"""Technology profiles: the Table 1 "generic assumptions", verbatim.

Every constant the paper's Table 1 quotes for the two technologies is
encoded here once, in base SI units, with the paper's reference numbers
in comments.  The architecture models in :mod:`repro.core` and the
functional simulator in :mod:`repro.sim` consume these profiles; nothing
else in the codebase hard-codes a technology number.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError
from ..units import FJ, KiB, MM2, NW, PS, UM2


@dataclass(frozen=True)
class MemristorTechnology:
    """Memristor crossbar technology constants (Table 1, CIM column).

    Attributes
    ----------
    name:
        Human-readable technology label.
    feature_size:
        Half-pitch F in metres.
    write_time:
        One memristor write (= one stateful-logic step) in seconds.
    write_energy:
        Dynamic energy of one write operation in joules.
    cell_area:
        Area of one memristor junction in square metres.
    static_power:
        Standby power per cell in watts (0 for memristors — the paper's
        "practically zero leakage" claim).
    r_on, r_off:
        Bounding resistances in ohms (for electrical-level simulation;
        not used by the analytical architecture model).
    """

    name: str
    feature_size: float
    write_time: float
    write_energy: float
    cell_area: float
    static_power: float = 0.0
    r_on: float = 1e3
    r_off: float = 1e6

    def __post_init__(self) -> None:
        if min(self.feature_size, self.write_time, self.write_energy, self.cell_area) <= 0:
            raise DeviceError("memristor technology constants must be positive")
        if self.static_power < 0:
            raise DeviceError("static power cannot be negative")
        if self.r_on >= self.r_off:
            raise DeviceError("r_on must be below r_off")

    @property
    def off_on_ratio(self) -> float:
        """High OFF/ON resistance ratio the paper cites [46]."""
        return self.r_off / self.r_on


@dataclass(frozen=True)
class CMOSTechnology:
    """CMOS logic technology constants (Table 1, conventional column)."""

    name: str
    gate_delay: float          # seconds per gate [53, 54]
    gate_area: float           # m^2 per gate [30]
    gate_power: float          # dynamic power per switching gate, watts [54]
    gate_leakage: float        # leakage power per gate, watts [30]
    clock_frequency: float     # Hz

    def __post_init__(self) -> None:
        if min(self.gate_delay, self.gate_area, self.gate_power,
               self.gate_leakage, self.clock_frequency) <= 0:
            raise DeviceError("CMOS technology constants must be positive")

    @property
    def cycle_time(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_frequency

    def gate_dynamic_energy(self) -> float:
        """Energy of one gate evaluation: power x gate delay (joules)."""
        return self.gate_power * self.gate_delay

    def gate_leakage_energy(self, idle_time: float) -> float:
        """Leakage energy of one gate over *idle_time* seconds.

        Table 1 defines the leakage duration per cycle as
        "cycle time - delay per gate"; callers compute the idle time and
        this helper converts it to joules.
        """
        if idle_time < 0:
            raise DeviceError(f"idle_time must be non-negative, got {idle_time}")
        return self.gate_leakage * idle_time


@dataclass(frozen=True)
class CacheSpec:
    """Shared L1 cache model parameters (Table 1, conventional column)."""

    size_bytes: int = 8 * KiB          # 8 kB shared L1 per cluster
    area: float = 0.0092 * MM2         # [57]
    hit_ratio: float = 0.5             # DNA example; math example uses 0.98
    hit_cycles: int = 1
    miss_penalty_cycles: int = 165     # [55]
    write_cycles: int = 1
    static_power: float = 1.0 / 64.0   # watts [56]

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.area <= 0:
            raise DeviceError("cache size and area must be positive")
        if not 0.0 <= self.hit_ratio <= 1.0:
            raise DeviceError(f"hit ratio must lie in [0, 1], got {self.hit_ratio}")
        if min(self.hit_cycles, self.miss_penalty_cycles, self.write_cycles) < 1:
            raise DeviceError("cache timing parameters must be >= 1 cycle")
        if self.static_power < 0:
            raise DeviceError("cache static power cannot be negative")

    def average_read_cycles(self) -> float:
        """Hit/miss-weighted average read latency in cycles."""
        return (self.hit_ratio * self.hit_cycles
                + (1.0 - self.hit_ratio) * self.miss_penalty_cycles)

    def with_hit_ratio(self, hit_ratio: float) -> "CacheSpec":
        """Copy of this spec with a different hit ratio (for sweeps)."""
        return CacheSpec(
            size_bytes=self.size_bytes,
            area=self.area,
            hit_ratio=hit_ratio,
            hit_cycles=self.hit_cycles,
            miss_penalty_cycles=self.miss_penalty_cycles,
            write_cycles=self.write_cycles,
            static_power=self.static_power,
        )


#: Table 1: "Memristor 5nm crossbar implementation [30]" — write time
#: 200 ps [60], area 1e-4 um^2 per memristor [30], 1 fJ per write [30].
MEMRISTOR_5NM = MemristorTechnology(
    name="memristor-5nm",
    feature_size=5e-9,
    write_time=200 * PS,
    write_energy=1 * FJ,
    cell_area=1e-4 * UM2,
    static_power=0.0,
)

#: Table 1: "FinFET 22nm multi-core implementation" — gate delay 14 ps
#: [53, 54], 0.248 um^2 per gate [30], 175 nW per gate [54], leakage
#: 42.83 nW per gate [30], operating frequency 1 GHz.
FINFET_22NM = CMOSTechnology(
    name="finfet-22nm",
    gate_delay=14 * PS,
    gate_area=0.248 * UM2,
    gate_power=175 * NW,
    gate_leakage=42.83 * NW,
    clock_frequency=1e9,
)

#: Table 1 cache for the healthcare (DNA) example: 50% hit ratio.
CACHE_8KB_DNA = CacheSpec(hit_ratio=0.5)

#: Table 1 cache for the mathematics example: 98% hit ratio, otherwise
#: identical ("the same as for healthcare except with 98% hit rate").
CACHE_8KB_MATH = CacheSpec(hit_ratio=0.98)
