"""Process-variation sampling for memristive devices.

The paper lists "reduced reliability" among CMOS scaling problems and
cites OxRRAM process-variability test structures [95]; any credible
crossbar study must therefore expose device-to-device variation.
Resistance and threshold spreads in ReRAM are well described by
lognormal distributions (multiplicative filament-geometry variation),
which is what :class:`VariabilityModel` samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from .base import IdealBipolarMemristor, SwitchingThresholds
from ..errors import DeviceError


@dataclass(frozen=True)
class VariationSpec:
    """Lognormal sigma (in log-space) for each varied parameter.

    A sigma of 0 pins the parameter to its nominal value.  Typical
    published spreads: ~0.1-0.3 for R_on/R_off, ~0.05 for thresholds.
    """

    sigma_r_on: float = 0.15
    sigma_r_off: float = 0.25
    sigma_v_set: float = 0.05
    sigma_v_reset: float = 0.05

    def __post_init__(self) -> None:
        for name in ("sigma_r_on", "sigma_r_off", "sigma_v_set", "sigma_v_reset"):
            if getattr(self, name) < 0:
                raise DeviceError(f"{name} must be non-negative")


class VariabilityModel:
    """Samples per-device parameter sets around a nominal device.

    Parameters
    ----------
    nominal:
        The nominal abrupt device whose parameters are perturbed.
    spec:
        Lognormal sigmas; defaults to :class:`VariationSpec` defaults.
    seed:
        Seed for the internal :class:`numpy.random.Generator`; pass a
        fixed value for reproducible Monte-Carlo runs.
    """

    def __init__(
        self,
        nominal: Optional[IdealBipolarMemristor] = None,
        spec: Optional[VariationSpec] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.nominal = nominal if nominal is not None else IdealBipolarMemristor()
        self.spec = spec if spec is not None else VariationSpec()
        self._rng = np.random.default_rng(seed)

    def _lognormal(self, nominal: float, sigma: float) -> float:
        if sigma == 0:
            return nominal
        return float(nominal * np.exp(self._rng.normal(0.0, sigma)))

    def sample(self) -> IdealBipolarMemristor:
        """Draw one device.  Re-draws (up to a bound) in the rare case
        the sampled R_on crosses above the sampled R_off."""
        for _ in range(100):
            r_on = self._lognormal(self.nominal.r_on, self.spec.sigma_r_on)
            r_off = self._lognormal(self.nominal.r_off, self.spec.sigma_r_off)
            if r_on < r_off:
                break
        else:  # pragma: no cover - requires pathological sigmas
            raise DeviceError("could not sample a device with r_on < r_off")
        v_set = self._lognormal(self.nominal.thresholds.v_set, self.spec.sigma_v_set)
        v_reset = -self._lognormal(
            abs(self.nominal.thresholds.v_reset), self.spec.sigma_v_reset
        )
        return IdealBipolarMemristor(
            r_on=r_on,
            r_off=r_off,
            thresholds=SwitchingThresholds(v_set=v_set, v_reset=v_reset),
            switch_time=self.nominal.switch_time,
        )

    def sample_many(self, count: int) -> List[IdealBipolarMemristor]:
        """Draw *count* independent devices."""
        if count < 0:
            raise DeviceError(f"count must be non-negative, got {count}")
        return [self.sample() for _ in range(count)]

    def iter_samples(self) -> Iterator[IdealBipolarMemristor]:
        """Infinite stream of sampled devices."""
        while True:
            yield self.sample()


def resistance_spread(devices: List[IdealBipolarMemristor]) -> dict:
    """Summary statistics of ON/OFF resistance over a device population.

    Returns a dict with keys ``r_on_mean``, ``r_on_std``, ``r_off_mean``,
    ``r_off_std`` and ``min_window`` (the worst-case r_off/r_on ratio —
    the quantity a sense amplifier must survive).
    """
    if not devices:
        raise DeviceError("need at least one device")
    r_on = np.array([d.r_on for d in devices])
    r_off = np.array([d.r_off for d in devices])
    return {
        "r_on_mean": float(r_on.mean()),
        "r_on_std": float(r_on.std()),
        "r_off_mean": float(r_off.mean()),
        "r_off_std": float(r_off.std()),
        "min_window": float(r_off.min() / r_on.max()),
    }
