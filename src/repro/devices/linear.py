"""Linear ion-drift memristor model (Strukov et al., Nature 2008).

The paper cites this as the original "missing memristor found" model
[39].  The device is a TiO2 film of thickness ``D`` split into a doped
(conductive) region of width ``w`` and an undoped region; the normalised
state ``x = w / D`` drifts with the ionic mobility ``mu_v`` under the
ohmic current:

    dx/dt = (mu_v * R_on / D^2) * i(t) * f(x)

where ``f`` is a window function keeping the state in ``[0, 1]``.
The paper itself notes ([39, 70]) that "simple memristor models fail to
predict the correct device behaviour" — the model is included both for
completeness and so the test suite can demonstrate exactly the
shortcomings (no threshold, drift at any bias) that motivate the
threshold models in :mod:`repro.devices.vteam` and the CRS cell.
"""

from __future__ import annotations

from typing import Callable, Optional

from . import windows
from .base import Memristor
from ..errors import DeviceError

WindowFn = Callable[[float], float]


class LinearIonDriftMemristor(Memristor):
    """Strukov linear ion-drift device.

    Parameters
    ----------
    r_on, r_off:
        Bounding resistances in ohms.
    d:
        Film thickness in metres (default 10 nm).
    mu_v:
        Ion mobility in m^2 s^-1 V^-1 (default 1e-14, the Nature paper's
        value for TiO2).
    window:
        State window ``f(x) -> float``; defaults to the Joglekar window
        with p=1.  Pass :func:`repro.devices.windows.rectangular` to
        disable windowing.
    x:
        Initial normalised state.
    """

    def __init__(
        self,
        r_on: float = 100.0,
        r_off: float = 16e3,
        d: float = 10e-9,
        mu_v: float = 1e-14,
        window: Optional[WindowFn] = None,
        x: float = 0.1,
    ) -> None:
        super().__init__(r_on, r_off, x)
        if d <= 0:
            raise DeviceError(f"film thickness must be positive, got {d}")
        if mu_v <= 0:
            raise DeviceError(f"ion mobility must be positive, got {mu_v}")
        self.d = float(d)
        self.mu_v = float(mu_v)
        self.window: WindowFn = window if window is not None else windows.joglekar

    @property
    def drift_coefficient(self) -> float:
        """The lumped factor ``mu_v * R_on / D^2`` in (1/(A*s))·ohm terms."""
        return self.mu_v * self.r_on / (self.d ** 2)

    def resistance(self) -> float:
        """Series mix ``R(x) = x*R_on + (1-x)*R_off``.

        The Strukov model is defined with the doped/undoped regions in
        *series*, unlike the filamentary parallel-conductance picture of
        the base class, so we override accordingly.
        """
        return self._x * self.r_on + (1.0 - self._x) * self.r_off

    def _state_derivative(self, voltage: float) -> float:
        i = voltage / self.resistance()
        return self.drift_coefficient * i * self.window(self._x)

    def has_threshold(self) -> bool:
        """Linear drift has no switching threshold — any bias moves state.

        Exposed so architecture code can assert it is *not* using a
        threshold-free device where sneak-path disturb would be fatal.
        """
        return False
