"""Valence change memory (VCM) device model.

The second bipolar ReRAM family the paper highlights (HfOx, TaOx).
Section IV.A quotes the best published figures the architecture relies
on: F = 10 nm feature size [62], < 200 ps switching for TaOx [42],
> 1e12 endurance cycles [65] and > 10 year retention [66].  "VCM
modelling is even more challenging due to the versatile device physics"
[69]; what matters for this reproduction is (a) asymmetric set/reset
kinetics, (b) a current-compliance-limited LRS, and (c) gradual
(multi-level-capable) reset — all of which this phenomenological model
exposes.

The kinetics use an exponential voltage-acceleration law with separate
set/reset scales; endurance and retention are modelled as budget
counters so lifetime studies can run without a thermal solver.
"""

from __future__ import annotations

import math

from .base import Memristor
from ..errors import DeviceError


class VCMMemristor(Memristor):
    """Asymmetric-kinetics VCM cell with endurance accounting.

    Parameters
    ----------
    v_set, v_reset:
        Threshold voltages (v_set > 0, v_reset < 0).
    tau_set, tau_reset:
        Switching time constants at threshold overdrive of one
        ``v_acc`` (seconds).
    v_acc:
        Voltage acceleration scale (volts per e-fold of speed).
    endurance:
        Total full set+reset cycles before the cell is considered worn
        out; ``None`` disables wear accounting.
    """

    def __init__(
        self,
        r_on: float = 2e3,
        r_off: float = 2e6,
        v_set: float = 0.8,
        v_reset: float = -0.8,
        tau_set: float = 1e-9,
        tau_reset: float = 2e-9,
        v_acc: float = 0.2,
        endurance: float = 1e12,
        x: float = 0.0,
    ) -> None:
        super().__init__(r_on, r_off, x)
        if v_set <= 0 or v_reset >= 0:
            raise DeviceError(f"need v_set > 0 > v_reset (got {v_set}, {v_reset})")
        if tau_set <= 0 or tau_reset <= 0:
            raise DeviceError("switching time constants must be positive")
        if v_acc <= 0:
            raise DeviceError(f"v_acc must be positive, got {v_acc}")
        if endurance is not None and endurance <= 0:
            raise DeviceError(f"endurance must be positive or None, got {endurance}")
        self.v_set = float(v_set)
        self.v_reset = float(v_reset)
        self.tau_set = float(tau_set)
        self.tau_reset = float(tau_reset)
        self.v_acc = float(v_acc)
        self.endurance = endurance
        self._wear = 0.0

    # -- wear accounting ---------------------------------------------------

    @property
    def wear_cycles(self) -> float:
        """Accumulated equivalent full switching cycles."""
        return self._wear

    def is_worn_out(self) -> bool:
        """True once accumulated wear exceeds the endurance budget."""
        return self.endurance is not None and self._wear >= self.endurance

    # -- dynamics ------------------------------------------------------------

    def _state_derivative(self, voltage: float) -> float:
        if voltage >= self.v_set:
            speed = math.exp((voltage - self.v_set) / self.v_acc) / self.tau_set
            return speed * (1.0 - self._x)
        if voltage <= self.v_reset:
            speed = math.exp((self.v_reset - voltage) / self.v_acc) / self.tau_reset
            return -speed * self._x
        return 0.0

    def apply_voltage(self, voltage: float, duration: float, steps: int = 1) -> None:
        before = self._x
        super().apply_voltage(voltage, duration, steps)
        # Half a cycle of wear per full-swing transition in either direction.
        self._wear += abs(self._x - before) * 0.5

    def has_threshold(self) -> bool:
        """VCM retains state below its set/reset thresholds."""
        return True
