"""Memristive device models — the technology substrate of the paper.

Public API:

* :class:`Memristor` / :class:`IdealBipolarMemristor` — device contract
  and the abrupt threshold device used by CRS and stateful logic.
* :class:`LinearIonDriftMemristor` — Strukov model with window functions.
* :class:`VTEAMMemristor` — voltage-threshold model (IMPLY substrate).
* :class:`ECMMemristor` / :class:`VCMMemristor` — the two bipolar ReRAM
  families discussed in Section IV.A.
* :class:`ComplementaryResistiveSwitch` — the Fig 4 CRS cell.
* Technology profiles (:data:`MEMRISTOR_5NM`, :data:`FINFET_22NM`,
  cache specs) — Table 1 constants.
* :class:`VariabilityModel` — lognormal process variation.
"""

from .base import IdealBipolarMemristor, Memristor, SwitchingThresholds
from .crs import ComplementaryResistiveSwitch, CRSState, triangular_sweep
from .ecm import ECMMemristor
from .linear import LinearIonDriftMemristor
from .retention import BOLTZMANN_EV, RetentionModel, extrapolate_from_bake
from .technology import (
    CACHE_8KB_DNA,
    CACHE_8KB_MATH,
    CacheSpec,
    CMOSTechnology,
    FINFET_22NM,
    MEMRISTOR_5NM,
    MemristorTechnology,
)
from .variability import VariabilityModel, VariationSpec, resistance_spread
from .vcm import VCMMemristor
from .vteam import VTEAMMemristor
from . import windows

__all__ = [
    "Memristor",
    "IdealBipolarMemristor",
    "SwitchingThresholds",
    "LinearIonDriftMemristor",
    "VTEAMMemristor",
    "ECMMemristor",
    "VCMMemristor",
    "ComplementaryResistiveSwitch",
    "CRSState",
    "triangular_sweep",
    "MemristorTechnology",
    "CMOSTechnology",
    "CacheSpec",
    "MEMRISTOR_5NM",
    "FINFET_22NM",
    "CACHE_8KB_DNA",
    "CACHE_8KB_MATH",
    "VariabilityModel",
    "VariationSpec",
    "resistance_spread",
    "windows",
    "RetentionModel",
    "extrapolate_from_bake",
    "BOLTZMANN_EV",
]
