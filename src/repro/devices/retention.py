"""Retention modelling: the ">10 years" claim of Section IV.A.

References [66] (TaOx VCM) and [67] (Ag-chalcogenide ECM) report
*extrapolated* retention beyond 10 years — extrapolated because nobody
waits a decade: retention is measured at elevated temperature and
scaled with an Arrhenius law,

    t_ret(T) = t0 * exp(E_a / (k_B * T))

where ``E_a`` is the activation energy of the dominant relaxation
process (filament dissolution / vacancy diffusion; ~1.0-1.5 eV for the
cited device families).  :class:`RetentionModel` implements exactly
that extrapolation, plus the induced state-decay view used by the
device tests (state relaxes exponentially toward HRS with the
temperature-dependent time constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DeviceError

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5

#: Seconds per (Julian) year.
YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class RetentionModel:
    """Arrhenius retention extrapolation for a resistive cell.

    Attributes
    ----------
    activation_energy:
        E_a in electron-volts (default 1.5 eV, the upper range of
        published VCM retention activation energies — the value that,
        with a phonon-scale attempt time, yields the >10-year
        room-temperature extrapolation of [66]).
    attempt_time:
        The Arrhenius prefactor t0 in seconds (default 1e-14 s, a
        typical phonon attempt period).
    """

    activation_energy: float = 1.5
    attempt_time: float = 1e-14

    def __post_init__(self) -> None:
        if self.activation_energy <= 0:
            raise DeviceError(
                f"activation energy must be positive, got {self.activation_energy}"
            )
        if self.attempt_time <= 0:
            raise DeviceError(
                f"attempt time must be positive, got {self.attempt_time}"
            )

    def retention_time(self, temperature_k: float) -> float:
        """Characteristic retention time at *temperature_k* (seconds)."""
        if temperature_k <= 0:
            raise DeviceError(
                f"temperature must be positive kelvin, got {temperature_k}"
            )
        exponent = self.activation_energy / (BOLTZMANN_EV * temperature_k)
        return self.attempt_time * math.exp(exponent)

    def retention_years(self, temperature_k: float) -> float:
        """Retention time in years."""
        return self.retention_time(temperature_k) / YEAR

    def meets_ten_years(self, temperature_k: float) -> bool:
        """The Section IV.A criterion at the given temperature."""
        return self.retention_years(temperature_k) >= 10.0

    def state_after(self, x0: float, duration: float, temperature_k: float) -> float:
        """State decay: LRS relaxes exponentially toward HRS.

        ``x(t) = x0 * exp(-t / t_ret(T))`` — the first-order relaxation
        picture behind the extrapolated-retention plots of [66].
        """
        if not 0.0 <= x0 <= 1.0:
            raise DeviceError(f"state must lie in [0, 1], got {x0}")
        if duration < 0:
            raise DeviceError(f"duration must be non-negative, got {duration}")
        return x0 * math.exp(-duration / self.retention_time(temperature_k))

    def max_operating_temperature(self, years: float = 10.0) -> float:
        """Highest temperature (K) at which retention still reaches
        *years* — the spec sheet number this model exists to produce.

        Solves ``t0 * exp(Ea / kT) = years`` for T.
        """
        if years <= 0:
            raise DeviceError(f"years must be positive, got {years}")
        target = years * YEAR
        if target <= self.attempt_time:
            raise DeviceError("target below the attempt time — always met")
        return self.activation_energy / (
            BOLTZMANN_EV * math.log(target / self.attempt_time)
        )


def extrapolate_from_bake(
    bake_temperature_k: float,
    bake_retention_s: float,
    operating_temperature_k: float,
    activation_energy: float = 1.5,
) -> float:
    """The lab workflow of [66]: measure retention at an elevated bake
    temperature, extrapolate to operating temperature (seconds).

    ``t_op = t_bake * exp(Ea/k * (1/T_op - 1/T_bake))``
    """
    if bake_temperature_k <= 0 or operating_temperature_k <= 0:
        raise DeviceError("temperatures must be positive kelvin")
    if bake_retention_s <= 0:
        raise DeviceError("bake retention must be positive")
    if activation_energy <= 0:
        raise DeviceError("activation energy must be positive")
    exponent = (activation_energy / BOLTZMANN_EV) * (
        1.0 / operating_temperature_k - 1.0 / bake_temperature_k
    )
    return bake_retention_s * math.exp(exponent)
