"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DeviceError(ReproError):
    """Invalid device state or parameters (e.g. R_on >= R_off)."""


class CrossbarError(ReproError):
    """Invalid crossbar construction, addressing, or bias configuration."""


class LogicError(ReproError):
    """Invalid stateful-logic program, operand, or sequencing."""


class ArchitectureError(ReproError):
    """Inconsistent architecture model configuration."""


class WorkloadError(ReproError):
    """Invalid workload specification (e.g. zero operations)."""


class SynthesisError(LogicError):
    """Boolean-function synthesis could not produce an IMP program."""


class SpecError(ReproError):
    """Invalid technology-spec parameter, override path, or ledger entry."""


class ObservabilityError(ReproError):
    """Invalid metric/trace usage or a malformed telemetry sink/path."""


class BoardError(ReproError):
    """Invalid board configuration/usage, or a capability the selected
    board backend does not implement (e.g. the real-hardware stub)."""


class EngineError(ReproError):
    """Invalid kernel construction, operand batch, or executor backend."""


class PlannerError(ReproError):
    """Invalid workload trace or offload-planner usage."""


class ServeError(ReproError):
    """Invalid serving request, malformed protocol line, or server misuse."""


class ServerOverloaded(ServeError):
    """The server's bounded request queue is full; the request was rejected
    without being accepted (safe to retry after backoff)."""


class DeadlineExceeded(ServeError):
    """The request's deadline elapsed before its batch completed."""


class TransientExecutorError(ServeError):
    """A retryable executor failure (the serve layer retries these with
    exponential backoff before surfacing them)."""
