"""Energy/latency tracing for the functional CIM machine.

:class:`EnergyTrace` is the per-machine simulated-cost ledger.  Since
the observability layer landed it is a thin client of
:mod:`repro.obs`: every :meth:`EnergyTrace.record` call also charges the
active tracing span (if the process tracer is enabled), and the
aggregation helpers delegate to :class:`repro.obs.registry.Histogram`.

Traces round-trip through JSON via :meth:`EnergyTrace.to_json` /
:meth:`EnergyTrace.from_json` so benchmark artifacts can embed them.

.. deprecated::
    Poking the event list directly (``trace.events.append(...)``) is
    deprecated; ``events`` is now a read-only tuple view.  Use
    :meth:`record`, and the aggregate properties/histograms instead of
    hand-rolled loops.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ArchitectureError, ObservabilityError
from ..obs.registry import Histogram
from ..obs.tracing import get_tracer
from ..units import si_format

#: Numeric per-event fields, in serialisation order.
_EVENT_FIELDS = ("kind", "label", "steps", "energy", "latency")


@dataclass(frozen=True)
class TraceEvent:
    """One accounted operation in the functional machine."""

    kind: str          # 'read', 'write', 'logic'
    label: str
    steps: int
    energy: float
    latency: float


class EnergyTrace:
    """Accumulates events and answers aggregate questions."""

    __slots__ = ("_events",)

    def __init__(self, events: Optional[Iterable[TraceEvent]] = None) -> None:
        self._events: List[TraceEvent] = []
        for event in events or ():
            self._append(event)

    # -- recording ------------------------------------------------------------

    def record(self, kind: str, label: str, steps: int, energy: float, latency: float) -> None:
        """Append one event (validates non-negative costs).

        The event's simulated costs are also charged to the innermost
        open :class:`repro.obs.tracing.Span`, so functional runs under
        ``--profile`` show up in the span tree automatically.
        """
        self._append(TraceEvent(kind, label, steps, energy, latency))
        get_tracer().add_sim(energy=energy, latency=latency, steps=steps)

    def _append(self, event: TraceEvent) -> None:
        if event.steps < 0 or event.energy < 0 or event.latency < 0:
            raise ArchitectureError("trace costs must be non-negative")
        self._events.append(event)

    # -- event access ---------------------------------------------------------

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Read-only view of the recorded events.

        Mutating the returned tuple is impossible by construction; code
        that used to append here must go through :meth:`record`.
        """
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EnergyTrace):
            return NotImplemented
        return self._events == other._events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EnergyTrace({len(self._events)} events, "
            f"E={self.total_energy:.3g} J, T={self.total_latency:.3g} s)"
        )

    # -- aggregates -----------------------------------------------------------

    @property
    def total_energy(self) -> float:
        return sum(e.energy for e in self._events)

    @property
    def total_latency(self) -> float:
        return sum(e.latency for e in self._events)

    @property
    def total_steps(self) -> int:
        return sum(e.steps for e in self._events)

    def by_kind(self) -> Dict[str, Tuple[int, float, float]]:
        """Aggregate (steps, energy, latency) per event kind."""
        out: Dict[str, Tuple[int, float, float]] = {}
        for event in self._events:
            steps, energy, latency = out.get(event.kind, (0, 0.0, 0.0))
            out[event.kind] = (
                steps + event.steps,
                energy + event.energy,
                latency + event.latency,
            )
        return out

    def histogram(self, field: str = "energy", buckets=None) -> Histogram:
        """Distribution of one per-event cost field as an obs histogram.

        *field* is ``'energy'``, ``'latency'`` or ``'steps'``; the
        returned :class:`~repro.obs.registry.Histogram` is standalone
        (not registered) and carries count/sum/mean/min/max plus the
        fixed-bucket counts the exporters understand.
        """
        if field not in ("energy", "latency", "steps"):
            raise ObservabilityError(
                f"histogram field must be energy/latency/steps, got {field!r}"
            )
        kwargs = {} if buckets is None else {"buckets": buckets}
        hist = Histogram(f"trace_{field}", f"per-event {field}", **kwargs)
        for event in self._events:
            hist.observe(getattr(event, field))
        return hist

    def summary(self) -> str:
        """Multi-line human-readable cost summary."""
        lines = [
            f"total: steps={self.total_steps}, "
            f"E={si_format(self.total_energy, 'J')}, "
            f"T={si_format(self.total_latency, 's')}"
        ]
        for kind, (steps, energy, latency) in sorted(self.by_kind().items()):
            lines.append(
                f"  {kind:6s}: steps={steps}, E={si_format(energy, 'J')}, "
                f"T={si_format(latency, 's')}"
            )
        return "\n".join(lines)

    # -- (de)serialisation ----------------------------------------------------

    def to_json(self) -> str:
        """Serialise to a JSON document (lossless round-trip)."""
        return json.dumps(
            {"events": [asdict(e) for e in self._events]},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str) -> "EnergyTrace":
        """Rebuild a trace from :meth:`to_json` output.

        Raises :class:`~repro.errors.ObservabilityError` on malformed
        payloads.  Deserialisation does **not** re-charge the tracer —
        loading a trace is not executing one.
        """
        try:
            doc = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"trace payload is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(doc.get("events"), list):
            raise ObservabilityError("trace payload must be {'events': [...]}")
        trace = cls()
        for i, entry in enumerate(doc["events"]):
            if not isinstance(entry, dict) or set(entry) != set(_EVENT_FIELDS):
                raise ObservabilityError(
                    f"trace event #{i} must have exactly fields {_EVENT_FIELDS}"
                )
            try:
                event = TraceEvent(
                    kind=str(entry["kind"]),
                    label=str(entry["label"]),
                    steps=int(entry["steps"]),
                    energy=float(entry["energy"]),
                    latency=float(entry["latency"]),
                )
            except (TypeError, ValueError) as exc:
                raise ObservabilityError(
                    f"trace event #{i} has malformed fields: {exc}"
                ) from exc
            try:
                trace._append(event)
            except ArchitectureError as exc:
                raise ObservabilityError(str(exc)) from exc
        return trace
