"""Energy/latency tracing for the functional CIM machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import ArchitectureError
from ..units import si_format


@dataclass
class TraceEvent:
    """One accounted operation in the functional machine."""

    kind: str          # 'read', 'write', 'logic'
    label: str
    steps: int
    energy: float
    latency: float


@dataclass
class EnergyTrace:
    """Accumulates events and answers aggregate questions."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, kind: str, label: str, steps: int, energy: float, latency: float) -> None:
        """Append one event (validates non-negative costs)."""
        if steps < 0 or energy < 0 or latency < 0:
            raise ArchitectureError("trace costs must be non-negative")
        self.events.append(TraceEvent(kind, label, steps, energy, latency))

    @property
    def total_energy(self) -> float:
        return sum(e.energy for e in self.events)

    @property
    def total_latency(self) -> float:
        return sum(e.latency for e in self.events)

    @property
    def total_steps(self) -> int:
        return sum(e.steps for e in self.events)

    def by_kind(self) -> Dict[str, Tuple[int, float, float]]:
        """Aggregate (steps, energy, latency) per event kind."""
        out: Dict[str, Tuple[int, float, float]] = {}
        for event in self.events:
            steps, energy, latency = out.get(event.kind, (0, 0.0, 0.0))
            out[event.kind] = (
                steps + event.steps,
                energy + event.energy,
                latency + event.latency,
            )
        return out

    def summary(self) -> str:
        """Multi-line human-readable cost summary."""
        lines = [
            f"total: steps={self.total_steps}, "
            f"E={si_format(self.total_energy, 'J')}, "
            f"T={si_format(self.total_latency, 's')}"
        ]
        for kind, (steps, energy, latency) in sorted(self.by_kind().items()):
            lines.append(
                f"  {kind:6s}: steps={steps}, E={si_format(energy, 'J')}, "
                f"T={si_format(latency, 's')}"
            )
        return "\n".join(lines)
