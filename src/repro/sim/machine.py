"""Functional CIM machine: crossbar storage + IMPLY compute lanes.

This is the executable version of Fig 2's right-hand side.  Data words
live in a :class:`~repro.crossbar.memory.CrossbarMemory`; computation
happens in IMPLY *lanes* — program batches execute through the unified
:mod:`repro.engine` pipeline (digest-cached kernels, vectorised
functional executor).  Every access and every logic pulse is charged to
an :class:`~repro.sim.trace.EnergyTrace` with the Table 1 constants, so
a functional run produces the same kind of numbers the analytical model
predicts — on real, bit-accurate data.

The two paper workloads are provided as machine methods:
:meth:`compare_all` (DNA-style equality search over stored words) and
:meth:`add_arrays` (parallel addition), each verified against a Python
golden model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..crossbar.memory import CrossbarMemory
from ..devices.technology import MEMRISTOR_5NM, MemristorTechnology
from ..engine import kernel_for_program, run_kernel
from ..errors import ArchitectureError
from ..logic.adders import ripple_adder_program
from ..logic.comparator import word_comparator_program
from ..logic.program import ImplyProgram
from .trace import EnergyTrace


@dataclass
class CIMRunResult:
    """Output of one functional CIM operation batch."""

    values: List[int]
    trace: EnergyTrace


class FunctionalCIM:
    """A words x width CIM tile with *lanes* parallel IMPLY compute lanes.

    Parameters
    ----------
    words, width:
        Crossbar storage geometry (one word per row).
    lanes:
        Number of independent compute lanes; a batch of K operations
        takes ``ceil(K / lanes)`` sequential lane-rounds of latency but
        pays energy for all K (parallel units burn energy concurrently).
    cell_kind:
        '1R' or 'CRS' storage junctions.
    technology:
        Table 1 memristor profile.
    """

    def __init__(
        self,
        words: int,
        width: int,
        lanes: int = 4,
        cell_kind: str = "1R",
        technology: MemristorTechnology = MEMRISTOR_5NM,
    ) -> None:
        if lanes < 1:
            raise ArchitectureError(f"lanes must be >= 1, got {lanes}")
        if width > 16:
            raise ArchitectureError(
                f"functional width is limited to 16 bits (got {width}); "
                "use repro.core for analytical wide-word evaluation"
            )
        self.memory = CrossbarMemory(words, width, cell_kind, technology)
        self.lanes = lanes
        self.technology = technology
        self.trace = EnergyTrace()

    # -- storage --------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.memory.width

    @property
    def words(self) -> int:
        return self.memory.words

    def store(self, address: int, value: int) -> None:
        """Write one word into the crossbar (traced)."""
        before_e, before_t = self.memory.stats.energy, self.memory.stats.time
        self.memory.write_int(address, value)
        self.trace.record(
            "write",
            f"store[{address}]",
            self.width,
            self.memory.stats.energy - before_e,
            self.memory.stats.time - before_t,
        )

    def store_many(self, values: Sequence[int], base: int = 0) -> None:
        """Write a vector of words starting at row *base*."""
        for offset, value in enumerate(values):
            self.store(base + offset, value)

    def load(self, address: int) -> int:
        """Read one word (traced; CRS write-backs included)."""
        before_e, before_t = self.memory.stats.energy, self.memory.stats.time
        value = self.memory.read_int(address)
        self.trace.record(
            "read",
            f"load[{address}]",
            1,
            self.memory.stats.energy - before_e,
            self.memory.stats.time - before_t,
        )
        return value

    # -- compute -----------------------------------------------------------------

    def _run_logic_batch(
        self,
        program: ImplyProgram,
        input_sets: List[dict],
        label: str,
    ) -> List[dict]:
        """Run *program* once per input set across the lanes.

        The whole batch is one vectorised functional-executor replay of
        the engine-compiled kernel (digest-cached, so repeated batches
        of the same program compile once).  Energy: every execution
        pays; latency: executions pipeline over the lanes, so the batch
        takes ``ceil(K / lanes)`` program latencies.
        """
        outputs: List[dict] = []
        executions = len(input_sets)
        if executions:
            kernel = kernel_for_program(program)
            batch = {
                signal: np.array(
                    [inputs[signal] for inputs in input_sets], dtype=np.uint8
                )
                for signal in kernel.inputs
            }
            # The lane/round cost model below is this tile's own ledger;
            # charge_span=False keeps the engine span from double-billing
            # any enclosing tracer span.
            result = run_kernel(kernel, batch, charge_span=False)
            outputs = [
                {
                    signal: int(result.outputs[signal][index])
                    for signal in kernel.outputs
                }
                for index in range(executions)
            ]
            rounds = -(-executions // self.lanes)
            per_run_energy = program.step_count * self.technology.write_energy
            per_run_latency = program.step_count * self.technology.write_time
            self.trace.record(
                "logic",
                label,
                program.step_count * executions,
                per_run_energy * executions,
                per_run_latency * rounds,
            )
        return outputs

    def compare_all(self, query: int) -> CIMRunResult:
        """Compare *query* against every stored word in-memory.

        Returns the list of matching row addresses.  Golden-checked
        against a direct read-back comparison.
        """
        program = word_comparator_program(self.width)
        input_sets = []
        stored = []
        for row in range(self.words):
            value = self.memory.read_int(row)
            stored.append(value)
            inputs = {}
            for i in range(self.width):
                inputs[f"a{i}"] = (value >> i) & 1
                inputs[f"b{i}"] = (query >> i) & 1
            input_sets.append(inputs)
        outputs = self._run_logic_batch(program, input_sets, "compare_all")
        matches = [row for row, out in enumerate(outputs) if out["match"] == 1]
        golden = [row for row, value in enumerate(stored) if value == query]
        if matches != golden:
            raise ArchitectureError(
                f"in-memory comparison diverged: {matches} vs golden {golden}"
            )
        return CIMRunResult(values=matches, trace=self.trace)

    def add_arrays(self, x: Sequence[int], y: Sequence[int]) -> CIMRunResult:
        """Element-wise in-memory addition of two vectors (mod 2^width)."""
        if len(x) != len(y):
            raise ArchitectureError(f"length mismatch: {len(x)} vs {len(y)}")
        program = ripple_adder_program(self.width)
        mask = (1 << self.width) - 1
        input_sets = []
        for a, b in zip(x, y):
            if not 0 <= a <= mask or not 0 <= b <= mask:
                raise ArchitectureError(f"operands must fit in {self.width} bits")
            inputs = {}
            for i in range(self.width):
                inputs[f"a{i}"] = (a >> i) & 1
                inputs[f"b{i}"] = (b >> i) & 1
            input_sets.append(inputs)
        outputs = self._run_logic_batch(program, input_sets, "add_arrays")
        sums = [
            sum(out[f"s{i}"] << i for i in range(self.width)) for out in outputs
        ]
        golden = [(a + b) & mask for a, b in zip(x, y)]
        if sums != golden:
            raise ArchitectureError("in-memory addition diverged from golden model")
        return CIMRunResult(values=sums, trace=self.trace)

    def reduce_add(self, addresses: Optional[Sequence[int]] = None) -> CIMRunResult:
        """Sum the stored words (mod 2^width) by a balanced adder tree.

        Each tree level is one :meth:`add_arrays`-style batch across the
        lanes, so the latency scales with ``log2(n)`` levels while energy
        scales with the ``n - 1`` additions — the massive-parallelism
        pattern the paper's architecture is built for.
        """
        if addresses is None:
            addresses = range(self.words)
        values = [self.memory.read_int(a) for a in addresses]
        if not values:
            raise ArchitectureError("reduce_add needs at least one word")
        mask = (1 << self.width) - 1
        golden = 0
        for value in values:
            golden = (golden + value) & mask
        program = ripple_adder_program(self.width)
        while len(values) > 1:
            pairs = [(values[i], values[i + 1])
                     for i in range(0, len(values) - 1, 2)]
            carry = [values[-1]] if len(values) % 2 else []
            input_sets = []
            for a, b in pairs:
                inputs = {}
                for i in range(self.width):
                    inputs[f"a{i}"] = (a >> i) & 1
                    inputs[f"b{i}"] = (b >> i) & 1
                input_sets.append(inputs)
            outputs = self._run_logic_batch(program, input_sets, "reduce_add")
            values = [
                sum(out[f"s{i}"] << i for i in range(self.width))
                for out in outputs
            ] + carry
        if values[0] != golden:
            raise ArchitectureError("in-memory reduction diverged from golden model")
        return CIMRunResult(values=values, trace=self.trace)

    def bitwise(self, op: str, address_a: int, address_b: int) -> int:
        """In-memory bitwise gate over two stored words.

        *op* is any 2-input gate from the library (AND/OR/NAND/NOR/
        XOR/XNOR); one gate program runs per bit lane, all lanes
        logically parallel.
        """
        from ..logic.gates import build_gate

        program = build_gate(op)
        if len(program.inputs) != 2:
            raise ArchitectureError(f"bitwise needs a 2-input gate, got {op!r}")
        a = self.memory.read_int(address_a)
        b = self.memory.read_int(address_b)
        input_sets = []
        for i in range(self.width):
            input_sets.append({
                "a": (a >> i) & 1,
                "b": (b >> i) & 1,
            })
        outputs = self._run_logic_batch(program, input_sets, f"bitwise_{op}")
        result = sum(out["out"] << i for i, out in enumerate(outputs))
        golden = {
            "AND": a & b, "OR": a | b, "XOR": a ^ b,
            "NAND": ~(a & b), "NOR": ~(a | b), "XNOR": ~(a ^ b),
        }[op.upper()] & ((1 << self.width) - 1)
        if result != golden:
            raise ArchitectureError(
                f"in-memory {op} diverged from golden model"
            )
        return result
