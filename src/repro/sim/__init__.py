"""Functional (bit-accurate) CIM machine simulation.

Public API: :class:`FunctionalCIM` (crossbar storage + IMPLY compute
lanes with full energy tracing), :class:`EnergyTrace`,
:class:`CIMRunResult`.
"""

from .machine import CIMRunResult, FunctionalCIM
from .rowmap import RowRegisterFile
from .simd import SIMDReport, SIMDRowExecutor
from .trace import EnergyTrace, TraceEvent

__all__ = [
    "FunctionalCIM",
    "CIMRunResult",
    "EnergyTrace",
    "TraceEvent",
    "RowRegisterFile",
    "SIMDRowExecutor",
    "SIMDReport",
]
