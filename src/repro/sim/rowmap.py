"""Executing IMPLY programs *inside* a crossbar row.

The abstract :class:`~repro.logic.sequencer.ImplyMachine` uses a free-
floating register file; a real CIM tile computes with the memristors of
one crossbar row while neighbouring rows hold data (Fig 2 right).
:class:`RowRegisterFile` makes that concrete: program registers are
allocated onto the columns of a chosen row of a
:class:`~repro.crossbar.array.CrossbarArray`, the Fig 5(a) IMP circuit
drives the actual junction devices, and a guard checksum verifies that
*no other row's data changes* during execution — the isolation property
that lets storage and compute share one array.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..crossbar.array import CrossbarArray
from ..devices.base import IdealBipolarMemristor
from ..devices.technology import MEMRISTOR_5NM, MemristorTechnology
from ..errors import LogicError
from ..logic.imply import ImplyGate, ImplyVoltages
from ..logic.program import ImplyProgram, OpKind
from ..logic.sequencer import ExecutionReport


class RowRegisterFile:
    """Maps IMPLY program registers onto one crossbar row's columns.

    Parameters
    ----------
    array:
        The crossbar; its junctions must expose a bare
        :class:`IdealBipolarMemristor` (the default array junction) or a
        ``.device`` attribute holding one (1R junctions).
    row:
        The compute row.  All other rows are data and must be untouched
        by program execution.
    voltages:
        IMP drive voltages; defaults match the default device.
    """

    def __init__(
        self,
        array: CrossbarArray,
        row: int,
        voltages: Optional[ImplyVoltages] = None,
        technology: MemristorTechnology = MEMRISTOR_5NM,
    ) -> None:
        if not 0 <= row < array.rows:
            raise LogicError(f"row {row} outside the {array.rows}-row array")
        self.array = array
        self.row = row
        self.gate = ImplyGate(voltages)
        self.technology = technology
        self._columns: Dict[str, int] = {}

    # -- device plumbing --------------------------------------------------

    def _device(self, col: int) -> IdealBipolarMemristor:
        junction = self.array.cell(self.row, col)
        if isinstance(junction, IdealBipolarMemristor):
            return junction
        device = getattr(junction, "device", None)
        if isinstance(device, IdealBipolarMemristor):
            return device
        raise LogicError(
            f"junction at ({self.row}, {col}) is not an abrupt memristor: "
            f"{type(junction).__name__}"
        )

    def _column_of(self, register: str) -> int:
        if register not in self._columns:
            col = len(self._columns)
            if col >= self.array.cols:
                raise LogicError(
                    f"program needs more than {self.array.cols} registers; "
                    "widen the array or run the register-reuse pass"
                )
            self._columns[register] = col
        return self._columns[register]

    @property
    def columns_used(self) -> int:
        return len(self._columns)

    # -- execution -----------------------------------------------------------

    def _data_snapshot(self) -> List[List[int]]:
        return [
            [self.array.cell(r, c).as_bit() for c in range(self.array.cols)]
            for r in range(self.array.rows) if r != self.row
        ]

    def run(
        self, program: ImplyProgram, inputs: Optional[Dict[str, int]] = None
    ) -> ExecutionReport:
        """Execute *program* in the compute row.

        Raises :class:`LogicError` if any *other* row's stored bits
        change (compute leaking into storage) or if the program needs
        more registers than the row has columns.
        """
        inputs = inputs or {}
        program.validate()
        before = self._data_snapshot()
        for ins in program.instructions:
            if ins.kind is OpKind.FALSE:
                self.gate.false(self._device(self._column_of(ins.operands[0])))
            elif ins.kind is OpKind.LOAD:
                try:
                    bit = inputs[ins.source]
                except KeyError:
                    raise LogicError(f"missing input {ins.source!r}") from None
                self._device(self._column_of(ins.operands[0])).write_bit(bit)
            else:
                p = self._device(self._column_of(ins.operands[0]))
                q = self._device(self._column_of(ins.operands[1]))
                self.gate.apply(p, q)
        if self._data_snapshot() != before:
            raise LogicError(
                "compute row execution disturbed stored data rows"
            )
        outputs = {
            signal: self._device(self._column_of(register)).as_bit()
            for signal, register in program.outputs.items()
        }
        steps = program.step_count
        return ExecutionReport(
            program=program.name,
            steps=steps,
            energy=steps * self.technology.write_energy,
            latency=steps * self.technology.write_time,
            outputs=outputs,
        )
