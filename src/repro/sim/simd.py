"""SIMD execution: one pulse controller, many crossbar rows.

The paper's parallelism is lock-step: Table 1's comparator runs "two
XOR ... in parallel" and the architecture replicates that unit hundreds
of thousands of times, all driven by a shared controller broadcasting
the same pulse sequence.  :class:`SIMDRowExecutor` is that model at the
electrical level: the *same* compiled kernel executes simultaneously on
every selected row of a crossbar (each row has its own operands), the
latency is charged **once** for the whole batch, and the energy once
per row — the defining cost asymmetry of data-parallel CIM.

Kernel construction and the per-row golden model both come from
:mod:`repro.engine`: programs are compiled into
:class:`~repro.engine.kernel.CompiledKernel` artifacts (digest-cached),
and the expected outputs for the whole batch are produced by one
vectorised functional-executor run instead of a per-row Python
interpretation.  Rows outside the selection are guarded against
disturbance, exactly as in :class:`repro.sim.rowmap.RowRegisterFile`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..crossbar.array import CrossbarArray
from ..devices.technology import MEMRISTOR_5NM, MemristorTechnology
from ..engine import CompiledKernel, kernel_for_program, run_kernel
from ..errors import LogicError
from ..logic.imply import ImplyVoltages
from ..logic.program import ImplyProgram
from .rowmap import RowRegisterFile


@dataclass
class SIMDReport:
    """Cost and results of one lock-step batch.

    ``latency`` is one program execution (rows run simultaneously);
    ``energy`` is per-row energy summed over the batch.
    """

    program: str
    rows: int
    steps_per_row: int
    latency: float
    energy: float
    outputs: List[Dict[str, int]]


class SIMDRowExecutor:
    """Runs one compiled kernel across many rows of one crossbar.

    Parameters
    ----------
    array:
        The shared crossbar; each selected row provides the program's
        register columns.
    voltages:
        IMP drive voltages shared by all rows (one controller).
    technology:
        Cost constants.
    """

    def __init__(
        self,
        array: CrossbarArray,
        voltages: Optional[ImplyVoltages] = None,
        technology: MemristorTechnology = MEMRISTOR_5NM,
    ) -> None:
        self.array = array
        self.voltages = voltages
        self.technology = technology

    def run(
        self,
        kernel: Union[CompiledKernel, ImplyProgram],
        per_row_inputs: Dict[int, Dict[str, int]],
    ) -> SIMDReport:
        """Execute *kernel* on every row in *per_row_inputs* lock-step.

        *kernel* is a :class:`~repro.engine.kernel.CompiledKernel` or a
        raw :class:`~repro.logic.program.ImplyProgram` (compiled through
        the engine's digest cache on the fly).  The dict maps row index
        -> that row's input assignment.  Rows not listed are storage and
        must remain untouched (verified).  Every row's outputs are
        checked against one vectorised functional-executor run, so a
        silent electrical divergence on any row fails loudly.
        """
        if isinstance(kernel, ImplyProgram):
            # Register names must survive for the row register file's
            # column mapping, so skip the allocation pass.
            kernel = kernel_for_program(kernel, allocate=False)
        program = kernel.program
        if not per_row_inputs:
            raise LogicError("SIMD batch needs at least one row")
        rows = sorted(per_row_inputs)
        for row in rows:
            if not 0 <= row < self.array.rows:
                raise LogicError(
                    f"row {row} outside the {self.array.rows}-row array"
                )
        compute = set(rows)
        guard_before = [
            [self.array.cell(r, c).as_bit() for c in range(self.array.cols)]
            for r in range(self.array.rows) if r not in compute
        ]

        # Golden model: one functional batch across all rows.
        batch_inputs = {
            signal: np.array(
                [per_row_inputs[row][signal] for row in rows], dtype=np.uint8
            )
            for signal in kernel.inputs
        }
        expected = run_kernel(
            kernel, batch_inputs, backend="functional", charge_span=False
        )

        outputs: List[Dict[str, int]] = []
        for index, row in enumerate(rows):
            row_file = RowRegisterFile(
                self.array, row, self.voltages, self.technology
            )
            report = row_file.run(program, per_row_inputs[row])
            golden_row = {
                signal: int(expected.outputs[signal][index])
                for signal in kernel.outputs
            }
            if report.outputs != golden_row:
                raise LogicError(
                    f"row {row}: electrical/functional divergence "
                    f"({report.outputs} vs {golden_row})"
                )
            outputs.append(report.outputs)

        guard_after = [
            [self.array.cell(r, c).as_bit() for c in range(self.array.cols)]
            for r in range(self.array.rows) if r not in compute
        ]
        if guard_after != guard_before:
            raise LogicError("SIMD batch disturbed storage rows")

        steps = program.step_count
        return SIMDReport(
            program=program.name,
            rows=len(rows),
            steps_per_row=steps,
            # Lock-step: the controller's pulse sequence runs once.
            latency=steps * self.technology.write_time,
            # Every row's devices dissipate their own pulses.
            energy=steps * len(rows) * self.technology.write_energy,
            outputs=outputs,
        )

    def map_unary(
        self,
        kernel: Union[CompiledKernel, ImplyProgram],
        values: Sequence[Dict[str, int]],
        base_row: int = 0,
    ) -> SIMDReport:
        """Convenience: run *kernel* over consecutive rows starting at
        *base_row*, one input assignment per row."""
        per_row = {
            base_row + offset: assignment
            for offset, assignment in enumerate(values)
        }
        return self.run(kernel, per_row)
