"""Tests for the crossbar bias schemes."""

import pytest

from repro.crossbar import (
    ALL_SCHEMES,
    FloatingBias,
    GroundedBias,
    VHalfBias,
    VThirdBias,
)
from repro.errors import CrossbarError


class TestCommonContract:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_selected_lines_always_driven(self, scheme):
        row_drive, col_drive = scheme.drives(4, 4, 1, 2, 1.0)
        assert row_drive[1] == 1.0
        assert col_drive[2] == 0.0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_rejects_out_of_range_cell(self, scheme):
        with pytest.raises(CrossbarError):
            scheme.drives(4, 4, 4, 0, 1.0)
        with pytest.raises(CrossbarError):
            scheme.drives(4, 4, 0, -1, 1.0)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_rejects_zero_voltage(self, scheme):
        with pytest.raises(CrossbarError):
            scheme.drives(4, 4, 0, 0, 0.0)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda s: s.name)
    def test_stress_non_negative(self, scheme):
        assert scheme.max_unselected_stress(1.0) >= 0


class TestFloating:
    def test_only_selected_lines_driven(self):
        row_drive, col_drive = FloatingBias().drives(8, 8, 3, 5, 1.0)
        assert set(row_drive) == {3}
        assert set(col_drive) == {5}


class TestGrounded:
    def test_all_lines_driven(self):
        row_drive, col_drive = GroundedBias().drives(4, 4, 0, 0, 1.0)
        assert set(row_drive) == set(range(4))
        assert set(col_drive) == set(range(4))
        assert row_drive[2] == 0.0
        assert col_drive[3] == 0.0


class TestVHalf:
    def test_unselected_at_half(self):
        row_drive, col_drive = VHalfBias().drives(4, 4, 0, 0, 1.0)
        assert row_drive[1] == pytest.approx(0.5)
        assert col_drive[1] == pytest.approx(0.5)

    def test_stress_is_half(self):
        assert VHalfBias().max_unselected_stress(1.0) == pytest.approx(0.5)

    def test_unselected_junction_sees_zero(self):
        """A fully unselected junction (V/2 row to V/2 column) sees no
        voltage at all under V/2 biasing."""
        row_drive, col_drive = VHalfBias().drives(4, 4, 0, 0, 1.0)
        assert row_drive[2] - col_drive[3] == pytest.approx(0.0)


class TestVThird:
    def test_asymmetric_levels(self):
        row_drive, col_drive = VThirdBias().drives(4, 4, 0, 0, 0.9)
        assert row_drive[1] == pytest.approx(0.3)
        assert col_drive[1] == pytest.approx(0.6)

    def test_every_junction_class_bounded_by_third(self):
        v = 0.9
        row_drive, col_drive = VThirdBias().drives(3, 3, 0, 0, v)
        stresses = [
            abs(row_drive[r] - col_drive[c])
            for r in range(3)
            for c in range(3)
            if (r, c) != (0, 0)
        ]
        assert max(stresses) <= v / 3.0 + 1e-12
        assert VThirdBias().max_unselected_stress(v) == pytest.approx(v / 3.0)


class TestHalfSelectSafety:
    def test_vhalf_protects_threshold_devices(self):
        """If the write voltage exceeds the device threshold but V/2
        does not, unselected cells are never disturbed — the property
        write schemes rely on."""
        v_write, v_threshold = 1.4, 1.0
        assert VHalfBias().max_unselected_stress(v_write) < v_threshold
        assert VThirdBias().max_unselected_stress(v_write) < v_threshold
        assert GroundedBias().max_unselected_stress(v_write) >= v_threshold
