"""Property-based tests for the stateful-logic layer (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.logic import (
    ImplyMachine,
    add_integers_functional,
    build_gate,
    imp_truth,
    ripple_adder_program,
    synthesise,
    verify_program,
    word_comparator_program,
)

bits = st.integers(min_value=0, max_value=1)


class TestImpAlgebra:
    @given(p=bits, q=bits)
    def test_imp_equals_not_p_or_q(self, p, q):
        assert imp_truth(p, q) == ((1 - p) | q)

    @given(p=bits)
    def test_imp_self_is_tautology_shape(self, p):
        # p IMP p = 1 for all p (on distinct devices holding equal bits).
        assert imp_truth(p, p) == 1

    @given(p=bits, q=bits)
    def test_electrical_imp_matches_truth(self, p, q):
        from repro.devices import IdealBipolarMemristor
        from repro.logic import ImplyGate

        gate = ImplyGate()
        device_p = IdealBipolarMemristor(x=float(p))
        device_q = IdealBipolarMemristor(x=float(q))
        assert gate.apply(device_p, device_q) == imp_truth(p, q)


class TestAdderProperties:
    @given(
        width=st.integers(min_value=1, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_addition_is_correct_for_any_operands(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        result = add_integers_functional(width, x, y)
        assert result["sum"] + (result["cout"] << width) == x + y

    @given(
        x=st.integers(min_value=0, max_value=255),
        y=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, x, y):
        a = add_integers_functional(8, x, y)
        b = add_integers_functional(8, y, x)
        assert a["sum"] == b["sum"] and a["cout"] == b["cout"]


class TestComparatorProperties:
    @given(
        width=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_match_iff_equal(self, width, data):
        x = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        y = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        prog = word_comparator_program(width)
        inputs = {f"a{i}": (x >> i) & 1 for i in range(width)}
        inputs.update({f"b{i}": (y >> i) & 1 for i in range(width)})
        assert prog.run_functional(inputs)["match"] == int(x == y)


class TestSynthesisProperties:
    @given(
        arity=st.integers(min_value=1, max_value=4),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_truth_table_synthesises_correctly(self, arity, data):
        """Synthesis is semantically complete: every Boolean function of
        up to 4 inputs compiles to a correct IMPLY program."""
        table = data.draw(
            st.lists(bits, min_size=1 << arity, max_size=1 << arity)
        )

        def fn(*args):
            pattern = sum(bit << i for i, bit in enumerate(args))
            return table[pattern]

        program = synthesise(fn, arity)
        verify_program(program, fn)

    @given(
        arity=st.integers(min_value=1, max_value=3),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_synthesised_programs_run_electrically(self, arity, data):
        table = data.draw(
            st.lists(bits, min_size=1 << arity, max_size=1 << arity)
        )

        def fn(*args):
            pattern = sum(bit << i for i, bit in enumerate(args))
            return table[pattern]

        program = synthesise(fn, arity)
        for pattern in range(1 << arity):
            machine = ImplyMachine()
            inputs = {
                name: (pattern >> i) & 1
                for i, name in enumerate(program.inputs)
            }
            machine.run_and_check(program, inputs)


class TestGateComposition:
    @given(a=bits, b=bits)
    def test_demorgan_holds_across_gates(self, a, b):
        """NAND(a,b) == OR(!a,!b) computed through the gate library."""
        nand = build_gate("NAND").run_functional({"a": a, "b": b})["out"]
        not_a = build_gate("NOT").run_functional({"a": a})["out"]
        not_b = build_gate("NOT").run_functional({"a": b})["out"]
        or_gate = build_gate("OR").run_functional({"a": not_a, "b": not_b})["out"]
        assert nand == or_gate

    @given(a=bits, b=bits)
    def test_xor_equals_or_and_not_and(self, a, b):
        xor = build_gate("XOR").run_functional({"a": a, "b": b})["out"]
        or_v = build_gate("OR").run_functional({"a": a, "b": b})["out"]
        nand_v = build_gate("NAND").run_functional({"a": a, "b": b})["out"]
        and_v = build_gate("AND").run_functional({"a": or_v, "b": nand_v})["out"]
        assert xor == and_v
