"""Tests for fault models, March tests and endurance projection."""

import pytest

from repro.core import (
    cim_dna_machine,
    cim_math_machine,
    dna_paper_workload,
    math_paper_workload,
)
from repro.crossbar import CrossbarMemory
from repro.errors import ArchitectureError, CrossbarError
from repro.reliability import (
    ENDURANCE_ECM,
    ENDURANCE_VCM,
    MARCH_C_MINUS,
    MATS_PLUS,
    FaultInjector,
    FaultType,
    MarchRunner,
    project_lifetime,
    writes_per_operation,
)
from repro.reliability import test_length as march_test_length


class TestFaultModels:
    def test_sa0_always_reads_zero(self):
        memory = CrossbarMemory(4, 4)
        FaultInjector(memory).inject(1, 1, FaultType.SA0)
        memory.write_word(1, [1, 1, 1, 1])
        assert memory.read_word(1) == [1, 0, 1, 1]

    def test_sa1_always_reads_one(self):
        memory = CrossbarMemory(4, 4)
        FaultInjector(memory).inject(2, 0, FaultType.SA1)
        memory.write_word(2, [0, 0, 0, 0])
        assert memory.read_word(2) == [1, 0, 0, 0]

    def test_tf0_blocks_up_transition_only(self):
        memory = CrossbarMemory(4, 4)
        FaultInjector(memory).inject(0, 0, FaultType.TF0)
        memory.write_word(0, [1, 0, 0, 0])     # up from 0: blocked
        assert memory.read_word(0)[0] == 0
        # The cell can still be "written 0" (no-op) without error.
        memory.write_word(0, [0, 0, 0, 0])
        assert memory.read_word(0)[0] == 0

    def test_tf1_blocks_down_transition_only(self):
        memory = CrossbarMemory(4, 4)
        injector = FaultInjector(memory)
        # Bring the cell to 1 first (up transition works for TF1).
        injector.inject(0, 0, FaultType.TF1)
        memory.write_word(0, [1, 0, 0, 0])
        assert memory.read_word(0)[0] == 1
        memory.write_word(0, [0, 0, 0, 0])     # down: blocked
        assert memory.read_word(0)[0] == 1

    def test_double_injection_rejected(self):
        memory = CrossbarMemory(4, 4)
        injector = FaultInjector(memory)
        injector.inject(0, 0, FaultType.SA0)
        with pytest.raises(CrossbarError):
            injector.inject(0, 0, FaultType.SA1)

    def test_out_of_range_rejected(self):
        with pytest.raises(CrossbarError):
            FaultInjector(CrossbarMemory(2, 2)).inject(5, 0, FaultType.SA0)

    def test_crs_memory_rejected(self):
        with pytest.raises(CrossbarError):
            FaultInjector(CrossbarMemory(2, 2, "CRS"))

    def test_random_injection(self):
        memory = CrossbarMemory(8, 8)
        injector = FaultInjector(memory)
        faults = injector.inject_random(10, seed=3)
        assert len(faults) == 10
        assert len(injector.fault_map()) == 10

    def test_random_injection_seeded(self):
        a = FaultInjector(CrossbarMemory(8, 8))
        b = FaultInjector(CrossbarMemory(8, 8))
        assert (
            [f.kind for f in a.inject_random(5, seed=7)]
            == [f.kind for f in b.inject_random(5, seed=7)]
        )

    def test_random_injection_count_bounds(self):
        with pytest.raises(CrossbarError):
            FaultInjector(CrossbarMemory(2, 2)).inject_random(5)

    def test_random_injection_explicit_rng(self):
        import numpy as np

        a = FaultInjector(CrossbarMemory(8, 8))
        b = FaultInjector(CrossbarMemory(8, 8))
        a.inject_random(5, rng=np.random.default_rng(7))
        b.inject_random(5, seed=7)
        assert a.fault_map() == b.fault_map()
        with pytest.raises(CrossbarError, match="not both"):
            FaultInjector(CrossbarMemory(8, 8)).inject_random(
                1, seed=1, rng=np.random.default_rng(1)
            )

    def test_seeded_fault_map_regression(self):
        """Seed 2026 pins this exact fault map — a change here means the
        draw order of inject_random changed, which silently invalidates
        every recorded fault-injection experiment."""
        injector = FaultInjector(CrossbarMemory(4, 4))
        injector.inject_random(4, seed=2026)
        assert injector.fault_map() == {
            (3, 0): FaultType.SA0,
            (2, 1): FaultType.SA1,
            (0, 1): FaultType.TF0,
            (1, 3): FaultType.TF1,
        }

    def test_seeded_noisy_board_fault_map_regression(self):
        """The noisy board consumes the fault vocabulary with its own
        seeded draw; seed 5 at fault_rate 0.1 pins this population."""
        from repro.board import InstrumentProfile, NoisyInstrumentBoard

        board = NoisyInstrumentBoard(
            4, 4, profile=InstrumentProfile(fault_rate=0.1), seed=5
        )
        assert board.faults == {
            (1, 0): FaultType.SA0,
            (1, 3): FaultType.SA1,
            (2, 0): FaultType.TF0,
        }


class TestMarchCMinusDetection:
    def test_clean_memory_passes(self):
        result = MarchRunner(CrossbarMemory(8, 8)).run()
        assert result.passed
        assert result.operations == 10 * 64     # 10N

    @pytest.mark.parametrize("kind", list(FaultType))
    def test_every_fault_type_detected(self, kind):
        memory = CrossbarMemory(8, 8)
        FaultInjector(memory).inject(3, 5, kind)
        result = MarchRunner(memory).run()
        assert result.faulty_cells() == {(3, 5)}, kind

    def test_exact_fault_localisation(self):
        memory = CrossbarMemory(8, 8)
        injector = FaultInjector(memory)
        injector.inject_random(6, seed=11)
        result = MarchRunner(memory).run()
        assert result.faulty_cells() == set(injector.fault_map())

    def test_detection_metadata(self):
        memory = CrossbarMemory(4, 4)
        FaultInjector(memory).inject(0, 0, FaultType.SA1)
        result = MarchRunner(memory).run()
        first = result.detections[0]
        assert (first.row, first.col) == (0, 0)
        assert first.expected != first.observed

    def test_mats_plus_weaker_than_march_c(self):
        """MATS+ (5N) misses the TF1 fault in the down-only position
        that March C- catches — the classic coverage difference."""
        memory = CrossbarMemory(4, 4)
        FaultInjector(memory).inject(0, 1, FaultType.TF1)
        mats = MarchRunner(memory).run(MATS_PLUS, "MATS+")
        memory2 = CrossbarMemory(4, 4)
        FaultInjector(memory2).inject(0, 1, FaultType.TF1)
        march_c = MarchRunner(memory2).run()
        assert march_c.faulty_cells() == {(0, 1)}
        assert len(mats.faulty_cells()) <= len(march_c.faulty_cells())

    def test_test_length_formula(self):
        assert march_test_length(MARCH_C_MINUS, 1024) == 10 * 1024
        assert march_test_length(MATS_PLUS, 1024) == 5 * 1024


class TestEndurance:
    def test_writes_per_operation_uses_steps(self):
        from repro.logic import ComparatorCost, TCAdderCost

        assert writes_per_operation(ComparatorCost()) == 16
        assert writes_per_operation(TCAdderCost(width=32)) == 133

    def test_math_machine_wears_out_fast(self):
        """Continuous stateful arithmetic burns 1e12 cycles in hours —
        endurance is a real architectural constraint the paper's vision
        leaves open."""
        report = project_lifetime(cim_math_machine(), math_paper_workload())
        assert report.lifetime_seconds < 24 * 3600
        assert not report.meets(1.0)

    def test_dna_machine_lifetime_longer(self):
        """The DNA workload is memory-bound (long rounds), so its
        compute cells wear far slower."""
        dna = project_lifetime(cim_dna_machine("paper"), dna_paper_workload())
        math = project_lifetime(cim_math_machine(), math_paper_workload())
        assert dna.lifetime_seconds > 100 * math.lifetime_seconds

    def test_ecm_endurance_is_100x_worse(self):
        vcm = project_lifetime(cim_math_machine(), math_paper_workload(),
                               endurance=ENDURANCE_VCM)
        ecm = project_lifetime(cim_math_machine(), math_paper_workload(),
                               endurance=ENDURANCE_ECM)
        assert vcm.lifetime_seconds == pytest.approx(
            100 * ecm.lifetime_seconds
        )

    def test_duty_cycle_scales_lifetime(self):
        full = project_lifetime(cim_math_machine(), math_paper_workload())
        tenth = project_lifetime(cim_math_machine(), math_paper_workload(),
                                 duty_cycle=0.1)
        assert tenth.lifetime_seconds == pytest.approx(
            10 * full.lifetime_seconds
        )

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            project_lifetime(cim_math_machine(), math_paper_workload(),
                             endurance=0.0)
        with pytest.raises(ArchitectureError):
            project_lifetime(cim_math_machine(), math_paper_workload(),
                             duty_cycle=1.5)
