"""Tests for workload definitions, including the Table 1 formulas."""

import pytest

from repro.core import Workload, dna_workload, parallel_additions_workload
from repro.errors import WorkloadError


class TestWorkloadDataclass:
    def test_totals(self):
        w = Workload("t", operations=100, reads_per_op=2, writes_per_op=1, hit_ratio=0.5)
        assert w.total_reads == 200
        assert w.total_writes == 100

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Workload("t", 0, 1, 1, 0.5)
        with pytest.raises(WorkloadError):
            Workload("t", 1, -1, 1, 0.5)
        with pytest.raises(WorkloadError):
            Workload("t", 1, 1, 1, 1.5)


class TestDNAWorkload:
    def test_paper_operation_count(self):
        """Table 1: no_short_reads = 50 * 3e9 / 100 = 1.5e9;
        no_comparisons = 4 * no_short_reads = 6e9."""
        w = dna_workload()
        assert w.operations == 6_000_000_000

    def test_reads_per_op_is_read_length(self):
        assert dna_workload().reads_per_op == 100.0

    def test_hit_ratio_default(self):
        assert dna_workload().hit_ratio == 0.5

    def test_scaled_parameters(self):
        w = dna_workload(coverage=10, reference_bases=10**6, short_read_len=50)
        assert w.operations == 4 * (10 * 10**6 // 50)
        assert w.reads_per_op == 50.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            dna_workload(coverage=0)
        with pytest.raises(WorkloadError):
            dna_workload(short_read_len=0)


class TestMathWorkload:
    def test_paper_count(self):
        w = parallel_additions_workload()
        assert w.operations == 10**6

    def test_two_reads_one_write(self):
        w = parallel_additions_workload()
        assert w.reads_per_op == 2.0
        assert w.writes_per_op == 1.0

    def test_hit_ratio_98(self):
        assert parallel_additions_workload().hit_ratio == 0.98

    def test_validation(self):
        with pytest.raises(WorkloadError):
            parallel_additions_workload(count=0)
