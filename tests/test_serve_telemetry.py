"""Request-scoped serve telemetry end to end (ISSUE 6 tentpole).

The acceptance criterion under test: every request — including the ones
that fail by deadline or rejection — leaves a retrievable flight record
with per-stage timings carrying its request id; trace identity survives
batching onto the worker pool into the engine spans; and the live
latency summary reports per-kernel quantiles.
"""

from __future__ import annotations

import asyncio
import io
import json
import time

import pytest

from repro.engine import resolve_kernel, run_kernel
from repro.errors import DeadlineExceeded, ServerOverloaded, TransientExecutorError
from repro.obs import get_registry, get_tracer
from repro.obs.flight import FlightRecorder
from repro.serve import ServeRequest, result_to_dict
from repro.serve.frontend import serve_jsonl
from repro.serve.server import KernelServer


def adder_request(request_id, a, b, **kwargs):
    return ServeRequest(
        id=request_id, kernel="adder", width=8,
        operands={"a": tuple(a), "b": tuple(b)}, **kwargs)


def run(coro):
    return asyncio.run(coro)


def all_spans(tracer):
    spans = []

    def visit(span):
        spans.append(span)
        for child in span.children:
            visit(child)

    for root in tracer.roots:
        visit(root)
    return spans


class TestFlightRecords:
    def test_ok_request_has_staged_timeline(self):
        recorder = FlightRecorder()

        async def scenario():
            async with KernelServer(max_wait_us=0, flight=recorder) as server:
                return await server.submit(adder_request("r1", [1], [2]))

        result = run(scenario())
        (record,) = recorder.for_request("r1")
        assert record.status == "ok"
        assert record.kernel == "adder"
        assert set(record.stages) >= {"queue_wait", "execute", "split"}
        assert all(v >= 0 for v in record.stages.values())
        assert record.wall_s > 0
        assert record.batch_requests == 1
        assert len(record.trace_id) == 32
        assert result.trace_id == record.trace_id

    def test_caller_trace_id_is_honoured(self):
        recorder = FlightRecorder()

        async def scenario():
            async with KernelServer(max_wait_us=0, flight=recorder) as server:
                return await server.submit(
                    adder_request("r1", [1], [2], trace_id="cafe" * 8))

        result = run(scenario())
        assert result.trace_id == "cafe" * 8
        assert recorder.for_request("r1")[0].trace_id == "cafe" * 8

    def test_deadline_exceeded_leaves_retrievable_record(self):
        """The acceptance criterion: a deadline-exceeded request has a
        flight record with per-stage timings carrying its request id."""
        recorder = FlightRecorder()

        def slow(request, operands, spec):
            time.sleep(0.15)
            return run_kernel(resolve_kernel(request.kernel, request.width),
                              operands or {}, spec=spec)

        async def scenario():
            async with KernelServer(workers=1, max_batch_size=1,
                                    max_wait_us=0, run_batch=slow,
                                    flight=recorder) as server:
                blocker = asyncio.ensure_future(
                    server.submit(adder_request("slow", [1], [2])))
                await asyncio.sleep(0.02)
                with pytest.raises(DeadlineExceeded):
                    await server.submit(
                        ServeRequest(id="late", kernel="adder", width=16,
                                     operands={"a": (3,), "b": (4,)},
                                     deadline_s=0.03))
                await blocker

        run(scenario())
        (late,) = recorder.for_request("late")
        assert late.status == "deadline"
        assert "deadline" in late.error
        assert "queue_wait" in late.stages  # it was dequeued before expiring
        assert late.wall_s >= 0.03

    def test_overload_rejection_is_recorded(self):
        recorder = FlightRecorder()

        async def scenario():
            # Submissions enqueue synchronously before the batcher task
            # gets scheduled, so a burst larger than queue_limit
            # deterministically trips the backpressure bound.
            async with KernelServer(queue_limit=4, max_wait_us=0,
                                    flight=recorder) as server:
                return await server.submit_many(
                    [adder_request(f"r{i}", [i], [i]) for i in range(10)],
                    return_exceptions=True,
                )

        outcomes = run(scenario())
        rejections = [r for r in outcomes if isinstance(r, ServerOverloaded)]
        assert rejections
        rejected = recorder.with_status("rejected")
        assert len(rejected) == len(rejections)
        assert all(r.error == "queue full" for r in rejected)
        # Accepted and rejected flights together cover the whole burst.
        assert len(recorder) == 10

    def test_cache_hit_recorded_with_flag(self):
        recorder = FlightRecorder()

        async def scenario():
            async with KernelServer(max_wait_us=0, flight=recorder) as server:
                await server.submit(adder_request("first", [1], [2]))
                return await server.submit(adder_request("again", [1], [2]))

        result = run(scenario())
        assert result.cached
        (record,) = recorder.for_request("again")
        assert record.status == "cached" and record.cache_hit

    def test_retries_counted_in_record(self):
        recorder = FlightRecorder()
        attempts = []

        def flaky(request, operands, spec):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientExecutorError("blip")
            return run_kernel(resolve_kernel(request.kernel, request.width),
                              operands or {}, spec=spec)

        async def scenario():
            async with KernelServer(max_wait_us=0, retries=2, backoff_s=0.001,
                                    run_batch=flaky, flight=recorder) as server:
                await server.submit(adder_request("r", [4], [5]))

        run(scenario())
        assert recorder.for_request("r")[0].retries == 2

    def test_executor_error_recorded(self):
        recorder = FlightRecorder()

        def broken(request, operands, spec):
            raise ValueError("wired wrong")

        async def scenario():
            async with KernelServer(max_wait_us=0, run_batch=broken,
                                    flight=recorder) as server:
                await server.submit(adder_request("r", [1], [2]))

        with pytest.raises(ValueError):
            run(scenario())
        (record,) = recorder.for_request("r")
        assert record.status == "error"
        assert "wired wrong" in record.error

    def test_telemetry_off_records_nothing(self):
        recorder = FlightRecorder()

        async def scenario():
            async with KernelServer(max_wait_us=0, telemetry=False,
                                    flight=recorder) as server:
                return await server.submit(adder_request("r", [1], [2]))

        result = run(scenario())
        assert result.outputs["sum"] == (3,)
        assert len(recorder) == 0
        assert result.trace_id == ""


class TestTracePropagation:
    def test_batch_span_links_every_member_request_id(self):
        tracer = get_tracer()
        tracer.enable()
        try:
            async def scenario():
                async with KernelServer(max_wait_us=50_000,
                                        flight=FlightRecorder()) as server:
                    await server.submit_many([
                        adder_request(f"r{i}", [i], [i]) for i in range(4)
                    ])

            run(scenario())
            serve_spans = [s for s in all_spans(tracer)
                           if s.name.startswith("serve/")]
            linked = serve_spans[-1].attrs["request_ids"]
            assert sorted(linked) == ["r0", "r1", "r2", "r3"]
            assert len(serve_spans[-1].attrs["trace_id"]) == 32
        finally:
            tracer.disable()

    def test_engine_span_carries_request_identity_across_pool(self):
        """contextvars must survive run_in_executor into run_kernel."""
        tracer = get_tracer()
        tracer.enable()
        try:
            async def scenario():
                async with KernelServer(max_wait_us=0,
                                        flight=FlightRecorder()) as server:
                    return await server.submit(adder_request("rid7", [1], [2]))

            result = run(scenario())
            engine_spans = [s for s in all_spans(tracer)
                            if s.name.startswith("engine/")]
            assert engine_spans, "no engine span captured"
            attrs = engine_spans[-1].attrs
            assert attrs["request_id"] == "rid7"
            assert attrs["trace_id"] == result.trace_id
        finally:
            tracer.disable()


class TestLatencyMetrics:
    def test_live_quantiles_per_kernel(self):
        async def scenario():
            async with KernelServer(max_wait_us=0,
                                    flight=FlightRecorder()) as server:
                for i in range(8):
                    await server.submit(adder_request(f"q{i}", [i], [1]))

        run(scenario())
        summary = get_registry().get("serve_request_latency_seconds")
        child = summary.labels(kernel="adder")
        assert child.count >= 8
        quantiles = child.quantiles()
        assert quantiles[0.5] is not None and quantiles[0.99] is not None
        assert quantiles[0.5] > 0
        wall = get_registry().get("serve_request_wall_seconds")
        assert wall.labels(kernel="adder").count >= 8
        # µs-scale buckets, not the simulated-unit defaults
        assert wall.buckets[0] == pytest.approx(1e-6)


class TestWireFormat:
    def test_trace_id_round_trips_through_jsonl(self):
        requests = "\n".join([
            json.dumps({"id": "a", "op": "kernel", "kernel": "adder",
                        "width": 8, "operands": {"a": [1], "b": [2]},
                        "trace_id": "beef" * 8}),
        ]) + "\n"
        out = io.StringIO()
        stats = serve_jsonl(io.StringIO(requests), out, max_wait_us=0)
        assert stats.counts == {"ok": 1}
        record = json.loads(out.getvalue())
        assert record["trace_id"] == "beef" * 8

    def test_result_to_dict_includes_trace_id(self):
        async def scenario():
            async with KernelServer(max_wait_us=0,
                                    flight=FlightRecorder()) as server:
                return await server.submit(adder_request("r", [1], [2]))

        result = run(scenario())
        assert result_to_dict(result)["trace_id"] == result.trace_id

    def test_unknown_fields_still_rejected(self):
        from repro.errors import ServeError
        from repro.serve import request_from_dict

        with pytest.raises(ServeError):
            request_from_dict({"id": "x", "op": "evaluate", "nope": 1})


class TestStats:
    def test_stats_shape(self):
        async def scenario():
            async with KernelServer(flight=FlightRecorder()) as server:
                await server.submit(adder_request("r", [1], [2]))
                return server.stats()

        stats = run(scenario())
        assert stats["workers"] == 4
        assert stats["telemetry"] is True
        assert stats["cache_entries"] == 1
        assert stats["queue_depth"] == 0
