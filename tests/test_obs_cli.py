"""CLI observability tests (--profile, obs subcommand, exit codes) and the
EnergyTrace JSON round-trip."""

import json

import pytest

from repro.__main__ import main
from repro.errors import ObservabilityError, ReproError
from repro.obs.tracing import get_tracer
from repro.sim.trace import EnergyTrace, TraceEvent


@pytest.fixture(autouse=True)
def clean_global_tracer():
    tracer = get_tracer()
    yield
    tracer.disable()
    tracer.reset()


class TestProfileFlag:
    def test_table2_profile_prints_span_tree(self, capsys):
        assert main(["table2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        # At least four distinct instrumented stages show up in the tree.
        for stage in ("table2", "conventional", "cim", "parallel-add"):
            assert stage in out
        # ...followed by the metrics summary.
        assert "imply_pulses_total" in out
        assert "table2_cells_evaluated_total" in out

    def test_profile_flag_after_subcommand(self, capsys):
        assert main(["fig1", "--profile"]) == 0
        assert "span tree" in capsys.readouterr().out

    def test_no_profile_no_span_tree(self, capsys):
        assert main(["fig1"]) == 0
        assert "span tree" not in capsys.readouterr().out

    def test_profile_disables_tracer_afterwards(self, capsys):
        main(["fig1", "--profile"])
        assert get_tracer().enabled is False


class TestObsSubcommand:
    def test_demo_runs_and_summarises(self, capsys):
        assert main(["obs", "--words", "8"]) == 0
        out = capsys.readouterr().out
        assert "imply_pulses_total" in out

    def test_exports_jsonl_and_prometheus(self, tmp_path, capsys):
        jsonl = tmp_path / "spans.jsonl"
        prom = tmp_path / "metrics.prom"
        assert main(["obs", "--jsonl", str(jsonl), "--prom", str(prom)]) == 0
        lines = jsonl.read_text().splitlines()
        assert lines, "expected at least one span record"
        first = json.loads(lines[0])
        assert {"name", "path", "wall_time_s", "sim_energy_j"} <= set(first)
        assert "imply_pulses_total" in prom.read_text()

    def test_bad_export_path_is_exit_2(self, tmp_path, capsys):
        bad = str(tmp_path / "missing" / "spans.jsonl")
        assert main(["obs", "--jsonl", bad]) == 2
        assert "error:" in capsys.readouterr().err


class TestExitCodes:
    def test_repro_error_maps_to_2(self, monkeypatch, capsys):
        import repro.__main__ as cli

        def boom(*a, **k):
            raise ReproError("synthetic failure")

        monkeypatch.setattr(cli, "render_table2", boom)
        assert main(["table2"]) == 2
        assert "synthetic failure" in capsys.readouterr().err

    def test_success_is_0(self, capsys):
        assert main(["fig5"]) == 0

    def test_quiet_and_verbose_accepted(self, capsys):
        assert main(["fig1", "--quiet"]) == 0
        assert main(["fig1", "-vv"]) == 0


class TestEnergyTraceJson:
    def make_trace(self) -> EnergyTrace:
        trace = EnergyTrace()
        trace.record("logic", "imply-batch", 4, 4e-15, 4e-10)
        trace.record("read", "row3", 1, 2e-16, 1e-10)
        return trace

    def test_round_trip(self):
        trace = self.make_trace()
        restored = EnergyTrace.from_json(trace.to_json())
        assert restored == trace
        assert restored.events == trace.events
        assert restored.total_energy == trace.total_energy

    def test_round_trip_does_not_recharge_tracer(self):
        payload = self.make_trace().to_json()  # record() outside any span
        tracer = get_tracer()
        tracer.enable()
        with tracer.span("load") as span:
            EnergyTrace.from_json(payload)
        assert span.sim_energy == 0.0

    def test_events_is_immutable_view(self):
        trace = self.make_trace()
        assert isinstance(trace.events, tuple)
        assert isinstance(trace.events[0], TraceEvent)
        with pytest.raises(AttributeError):
            trace.events[0].energy = 1.0  # frozen dataclass

    def test_malformed_json_rejected(self):
        for bad in ("not json", "{}", '{"events": "nope"}',
                    '{"events": [{"kind": "logic"}]}'):
            with pytest.raises(ObservabilityError):
                EnergyTrace.from_json(bad)

    def test_histogram_delegates_to_obs(self):
        from repro.obs.registry import Histogram

        hist = self.make_trace().histogram("energy")
        assert isinstance(hist, Histogram)
        assert hist.count == 2
        assert hist.sum == pytest.approx(4e-15 + 2e-16)
