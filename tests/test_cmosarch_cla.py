"""Tests for the functional carry-look-ahead adder."""

import pytest

from repro.cmosarch import CLAAdder
from repro.errors import ArchitectureError


class TestFunctionalCorrectness:
    def test_simple_sums(self):
        adder = CLAAdder(width=32)
        assert adder.add(1, 2) == (3, 0)
        assert adder.add(0, 0) == (0, 0)

    def test_carry_out(self):
        adder = CLAAdder(width=8)
        assert adder.add(255, 1) == (0, 1)
        assert adder.add(255, 255) == (254, 1)

    def test_carry_in(self):
        adder = CLAAdder(width=8)
        assert adder.add(1, 1, carry_in=1) == (3, 0)
        assert adder.add(255, 0, carry_in=1) == (0, 1)

    def test_exhaustive_4bit(self):
        adder = CLAAdder(width=4)
        for x in range(16):
            for y in range(16):
                for cin in (0, 1):
                    total, cout = adder.add(x, y, cin)
                    assert total + (cout << 4) == x + y + cin

    def test_random_32bit(self):
        import random

        rng = random.Random(7)
        adder = CLAAdder(width=32)
        for _ in range(200):
            x = rng.getrandbits(32)
            y = rng.getrandbits(32)
            total, cout = adder.add(x, y)
            assert total + (cout << 32) == x + y

    def test_operand_range_checked(self):
        adder = CLAAdder(width=4)
        with pytest.raises(ArchitectureError):
            adder.add(16, 0)
        with pytest.raises(ArchitectureError):
            adder.add(0, 0, carry_in=2)


class TestGateCounting:
    def test_32bit_count_near_textbook(self):
        """Parhami's 208-gate figure: our explicit two-level network
        lands in the same range (exact counts vary by CLA variant)."""
        adder = CLAAdder(width=32)
        assert 150 <= adder.gate_count <= 320

    def test_count_grows_with_width(self):
        assert CLAAdder(width=64).gate_count > CLAAdder(width=32).gate_count

    def test_gate_types_tallied(self):
        adder = CLAAdder(width=8)
        counter = adder.gates
        assert counter.xor2 == 16          # 2 per bit
        assert counter.and2 > 0
        assert counter.or2 > 0
        assert counter.total == counter.and2 + counter.or2 + counter.xor2

    def test_depth_pin_for_table1_config(self):
        assert CLAAdder(width=32, group_size=4).depth == 18

    def test_geometry_validation(self):
        with pytest.raises(ArchitectureError):
            CLAAdder(width=0)
        with pytest.raises(ArchitectureError):
            CLAAdder(width=10, group_size=4)
