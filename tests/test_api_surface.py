"""The stable facade contract (`repro.api`) and the deprecation policy.

``repro.api`` is the one import downstream code is told to rely on, so
its surface is pinned here: ``__all__`` and every signature are
snapshotted literally — any drift fails this file and must be a
deliberate, reviewed change.  The second half pins the live deprecation
shims (PR 9's CAMMatchCost move, PR 10's ``repro.serve`` facade
redesign): they still resolve (module ``__getattr__``) but emit exactly
one DeprecationWarning naming the replacement.  The PR 4 constant
aliases were removed in PR 10 once their replacements had been stable
for two PRs (``tests/test_spec_consistency.py`` asserts they raise).
"""

from __future__ import annotations

import inspect
import warnings

import pytest

from repro import _compat, api

# The pinned facade: name -> ordered {parameter: default} snapshot.
# inspect.Parameter.empty (no default) is spelled as the string "<required>".
EXPECTED_SIGNATURES = {
    "evaluate": {
        "application": "'dna'",
        "dna_packing": "'paper'",
        "spec": "None",
        "overrides": "None",
    },
    "list_boards": {
        "rows": "32",
        "cols": "32",
        "spec": "None",
        "overrides": "None",
    },
    "make_board": {
        "kind": "None",
        "rows": "32",
        "cols": "32",
        "variability": "0.0",
        "dac_bits": "0",
        "adc_bits": "0",
        "fault_rate": "0.0",
        "seed": "None",
        "spec": "None",
        "overrides": "None",
    },
    "plan": {
        "trace": "None",
        "spec": "None",
        "overrides": "None",
    },
    "run_kernel": {
        "kernel": "<required>",
        "width": "32",
        "operands": "None",
        "backend": "'functional'",
        "words": "None",
        "spec": "None",
        "overrides": "None",
    },
    "connect": {
        "target": "'local'",
        "shards": "1",
        "replicas": "1",
        "quota": "None",
        "max_batch_size": "64",
        "max_wait_us": "500.0",
        "queue_limit": "1024",
        "workers": "4",
        "retries": "2",
        "cache_capacity": "1024",
        "spec": "None",
        "overrides": "None",
    },
    "request": {
        "kernel": "''",
        "id": "''",
        "kind": "'kernel'",
        "width": "32",
        "operands": "None",
        "backend": "'auto'",
        "params": "None",
        "overrides": "None",
        "deadline_s": "None",
        "trace_id": "''",
        "tenant": "''",
    },
    "serve": {
        "input": "None",
        "output": "None",
        "shards": "1",
        "replicas": "1",
        "quota": "None",
        "max_batch_size": "64",
        "max_wait_us": "500.0",
        "queue_limit": "1024",
        "workers": "4",
        "retries": "2",
        "cache_capacity": "1024",
        "spec": "None",
        "overrides": "None",
        "metrics_port": "None",
    },
    "solve_crossbar": {
        "conductances": "<required>",
        "row_drive": "<required>",
        "col_drive": "<required>",
        "wire_resistance": "None",
        "driver_resistance": "0.0",
        "backend": "'auto'",
    },
    "sweep": {
        "grid": "None",
        "workers": "None",
        "serial": "False",
        "keep_ledgers": "True",
        "spec": "None",
        "overrides": "None",
    },
    "table2": {
        "dna_packing": "'paper'",
        "spec": "None",
        "overrides": "None",
    },
}


class TestFacadeSurface:
    def test_all_is_pinned_and_sorted(self):
        assert api.__all__ == sorted(EXPECTED_SIGNATURES)

    def test_every_name_resolves_to_a_callable(self):
        for name in api.__all__:
            assert callable(getattr(api, name)), name

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_signature_snapshot(self, name):
        signature = inspect.signature(getattr(api, name))
        snapshot = {
            parameter.name: ("<required>"
                             if parameter.default is inspect.Parameter.empty
                             else repr(parameter.default))
            for parameter in signature.parameters.values()
        }
        assert snapshot == EXPECTED_SIGNATURES[name], (
            f"api.{name} signature drifted — if intentional, update the "
            "snapshot here and note it in the changelog")

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_every_parameter_is_keyword_only(self, name):
        signature = inspect.signature(getattr(api, name))
        for parameter in signature.parameters.values():
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"api.{name}({parameter.name}) must be keyword-only: the "
                "facade's stability contract forbids positional coupling")

    def test_facade_answers_match_core(self):
        from repro.core import table2 as core_table2

        facade = api.table2()
        core = core_table2()
        assert facade.metrics == core.metrics
        assert facade.spec_digest == core.spec_digest

    def test_evaluate_flattens_both_architectures(self):
        metrics = api.evaluate(application="math")
        assert set(metrics) == {
            "conventional.energy_delay_per_op",
            "conventional.computing_efficiency",
            "conventional.performance_per_area",
            "cim.energy_delay_per_op",
            "cim.computing_efficiency",
            "cim.performance_per_area",
            "improvement.energy_delay",
            "improvement.computing_efficiency",
        }
        with pytest.raises(Exception):
            api.evaluate(application="weather")

    def test_run_kernel_by_name(self):
        result = api.run_kernel(kernel="adder", width=8,
                                operands={"a": [1, 2], "b": [3, 4]})
        assert list(result.word("sum")) == [4, 6]

    def test_make_board_and_list_boards(self):
        board = api.make_board(kind="noisy", rows=4, cols=4,
                               variability=0.1, seed=3)
        assert board.kind == "noisy"
        assert (board.rows, board.cols) == (4, 4)
        catalog = api.list_boards(rows=4, cols=4)
        kinds = {entry["kind"] for entry in catalog}
        assert kinds == {"ideal", "noisy", "hardware"}
        assert sum(entry["default"] for entry in catalog) == 1
        with pytest.raises(Exception):
            api.make_board(kind="ideal", variability=0.5)

    def test_overrides_derive_the_spec(self):
        from repro.spec import TABLE1

        hot = api.table2(
            overrides={"memristor.write_energy":
                       2 * TABLE1.memristor.write_energy})
        assert hot.spec_digest != api.table2().spec_digest


# module -> [(name, replacement fragment)] for every live deprecation
# shim.  PR 9 moved CAMMatchCost to the spec layer; PR 10 moved the
# serving entry points behind the ``api.connect()`` facade.  (The PR 4
# constant aliases left this table when they were removed — see
# ``tests/test_spec_consistency.py::test_removed_core_aliases_raise``.)
DEPRECATED_ALIASES = {
    "repro.engine.builtins": [
        ("CAMMatchCost", "repro.spec.costmodel.CAMMatchCost"),
    ],
    "repro.serve": [
        ("KernelServer", "repro.api.connect"),
        ("serve_jsonl", "repro.api.serve"),
    ],
}


def _flat_aliases():
    return [(module, name, fragment)
            for module, entries in DEPRECATED_ALIASES.items()
            for name, fragment in entries]


class TestDeprecationPolicy:
    @pytest.mark.parametrize("module_name,name,fragment", _flat_aliases())
    def test_alias_warns_once_with_replacement(self, module_name, name,
                                               fragment):
        import importlib

        module = importlib.import_module(module_name)
        # The warning fires once per process; reset so this test is
        # order-independent within the suite.
        _compat._WARNED.discard(f"{module_name}.{name}")
        with pytest.warns(DeprecationWarning, match=name) as captured:
            value = getattr(module, name)
        assert value is not None
        assert fragment in str(captured[0].message)
        assert "instead" in str(captured[0].message)
        # Second access: same value, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert getattr(module, name) == value

    def test_alias_values_match_canonical(self):
        """Each shim resolves to the exact object at the replacement
        path — same identity, not a lookalike."""
        import repro.serve
        from repro.engine import builtins as engine_builtins
        from repro.serve.frontend import serve_jsonl
        from repro.serve.server import KernelServer
        from repro.spec.costmodel import CAMMatchCost

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert engine_builtins.CAMMatchCost is CAMMatchCost
            assert repro.serve.KernelServer is KernelServer
            assert repro.serve.serve_jsonl is serve_jsonl

    def test_unknown_attribute_still_raises(self):
        import repro.serve
        from repro.core import presets

        with pytest.raises(AttributeError):
            presets.NOT_A_THING
        with pytest.raises(AttributeError):
            repro.serve.NOT_A_THING
