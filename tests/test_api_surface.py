"""The stable facade contract (`repro.api`) and the deprecation policy.

``repro.api`` is the one import downstream code is told to rely on, so
its surface is pinned here: ``__all__`` and every signature are
snapshotted literally — any drift fails this file and must be a
deliberate, reviewed change.  The second half pins the PR 4 legacy
constant aliases: they still resolve (module ``__getattr__``) but emit
exactly one DeprecationWarning naming the replacement.
"""

from __future__ import annotations

import inspect
import warnings

import pytest

from repro import _compat, api

# The pinned facade: name -> ordered {parameter: default} snapshot.
# inspect.Parameter.empty (no default) is spelled as the string "<required>".
EXPECTED_SIGNATURES = {
    "evaluate": {
        "application": "'dna'",
        "dna_packing": "'paper'",
        "spec": "None",
        "overrides": "None",
    },
    "list_boards": {
        "rows": "32",
        "cols": "32",
        "spec": "None",
        "overrides": "None",
    },
    "make_board": {
        "kind": "None",
        "rows": "32",
        "cols": "32",
        "variability": "0.0",
        "dac_bits": "0",
        "adc_bits": "0",
        "fault_rate": "0.0",
        "seed": "None",
        "spec": "None",
        "overrides": "None",
    },
    "plan": {
        "trace": "None",
        "spec": "None",
        "overrides": "None",
    },
    "run_kernel": {
        "kernel": "<required>",
        "width": "32",
        "operands": "None",
        "backend": "'functional'",
        "words": "None",
        "spec": "None",
        "overrides": "None",
    },
    "serve": {
        "input": "None",
        "output": "None",
        "max_batch_size": "64",
        "max_wait_us": "500.0",
        "queue_limit": "1024",
        "workers": "4",
        "retries": "2",
        "cache_capacity": "1024",
        "spec": "None",
        "overrides": "None",
        "metrics_port": "None",
    },
    "solve_crossbar": {
        "conductances": "<required>",
        "row_drive": "<required>",
        "col_drive": "<required>",
        "wire_resistance": "None",
        "driver_resistance": "0.0",
        "backend": "'auto'",
    },
    "sweep": {
        "grid": "None",
        "workers": "None",
        "serial": "False",
        "keep_ledgers": "True",
        "spec": "None",
        "overrides": "None",
    },
    "table2": {
        "dna_packing": "'paper'",
        "spec": "None",
        "overrides": "None",
    },
}


class TestFacadeSurface:
    def test_all_is_pinned_and_sorted(self):
        assert api.__all__ == sorted(EXPECTED_SIGNATURES)

    def test_every_name_resolves_to_a_callable(self):
        for name in api.__all__:
            assert callable(getattr(api, name)), name

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_signature_snapshot(self, name):
        signature = inspect.signature(getattr(api, name))
        snapshot = {
            parameter.name: ("<required>"
                             if parameter.default is inspect.Parameter.empty
                             else repr(parameter.default))
            for parameter in signature.parameters.values()
        }
        assert snapshot == EXPECTED_SIGNATURES[name], (
            f"api.{name} signature drifted — if intentional, update the "
            "snapshot here and note it in the changelog")

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIGNATURES))
    def test_every_parameter_is_keyword_only(self, name):
        signature = inspect.signature(getattr(api, name))
        for parameter in signature.parameters.values():
            assert parameter.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"api.{name}({parameter.name}) must be keyword-only: the "
                "facade's stability contract forbids positional coupling")

    def test_facade_answers_match_core(self):
        from repro.core import table2 as core_table2

        facade = api.table2()
        core = core_table2()
        assert facade.metrics == core.metrics
        assert facade.spec_digest == core.spec_digest

    def test_evaluate_flattens_both_architectures(self):
        metrics = api.evaluate(application="math")
        assert set(metrics) == {
            "conventional.energy_delay_per_op",
            "conventional.computing_efficiency",
            "conventional.performance_per_area",
            "cim.energy_delay_per_op",
            "cim.computing_efficiency",
            "cim.performance_per_area",
            "improvement.energy_delay",
            "improvement.computing_efficiency",
        }
        with pytest.raises(Exception):
            api.evaluate(application="weather")

    def test_run_kernel_by_name(self):
        result = api.run_kernel(kernel="adder", width=8,
                                operands={"a": [1, 2], "b": [3, 4]})
        assert list(result.word("sum")) == [4, 6]

    def test_make_board_and_list_boards(self):
        board = api.make_board(kind="noisy", rows=4, cols=4,
                               variability=0.1, seed=3)
        assert board.kind == "noisy"
        assert (board.rows, board.cols) == (4, 4)
        catalog = api.list_boards(rows=4, cols=4)
        kinds = {entry["kind"] for entry in catalog}
        assert kinds == {"ideal", "noisy", "hardware"}
        assert sum(entry["default"] for entry in catalog) == 1
        with pytest.raises(Exception):
            api.make_board(kind="ideal", variability=0.5)

    def test_overrides_derive_the_spec(self):
        from repro.spec import TABLE1

        hot = api.table2(
            overrides={"memristor.write_energy":
                       2 * TABLE1.memristor.write_energy})
        assert hot.spec_digest != api.table2().spec_digest


# name -> (module, replacement fragment) for every PR 4 legacy alias.
DEPRECATED_ALIASES = {
    "repro.core.presets": [
        ("DNA_CLUSTERS", "TABLE1.crossbar.dna_clusters"),
        ("UNITS_PER_CLUSTER", "TABLE1.crossbar.units_per_cluster"),
        ("DNA_CROSSBAR_DEVICES", "TABLE1.dna_crossbar_devices"),
        ("DNA_PAPER_IMPLIED_UNITS", "TABLE1.dna_units"),
        ("MATH_ADDITIONS", "TABLE1.workloads.math_additions"),
        ("MATH_CLUSTERS", "TABLE1.math_clusters"),
        ("MATH_STORAGE_DEVICES", "TABLE1.math_storage_devices"),
    ],
    "repro.core.classification": [
        ("WIRE_ENERGY_PER_BIT_M", "TABLE1.interconnect"),
        ("WIRE_DELAY_PER_M", "TABLE1.interconnect"),
        ("COMPUTE_ENERGY", "TABLE1.interconnect"),
        ("COMPUTE_DELAY", "TABLE1.interconnect"),
    ],
    "repro.core.roofline": [
        ("WORD_BYTES", "TABLE1.interconnect"),
    ],
    "repro.engine.builtins": [
        ("CAMMatchCost", "repro.spec.costmodel.CAMMatchCost"),
    ],
}


def _flat_aliases():
    return [(module, name, fragment)
            for module, entries in DEPRECATED_ALIASES.items()
            for name, fragment in entries]


class TestDeprecationPolicy:
    @pytest.mark.parametrize("module_name,name,fragment", _flat_aliases())
    def test_alias_warns_once_with_replacement(self, module_name, name,
                                               fragment):
        import importlib

        module = importlib.import_module(module_name)
        # The warning fires once per process; reset so this test is
        # order-independent within the suite.
        _compat._WARNED.discard(f"{module_name}.{name}")
        with pytest.warns(DeprecationWarning, match=name) as captured:
            value = getattr(module, name)
        assert value is not None
        assert fragment in str(captured[0].message)
        assert "instead" in str(captured[0].message)
        # Second access: same value, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert getattr(module, name) == value

    def test_alias_values_match_spec(self):
        from repro.core import classification, presets, roofline
        from repro.spec import TABLE1

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert presets.DNA_CLUSTERS == TABLE1.crossbar.dna_clusters
            assert (classification.WIRE_ENERGY_PER_BIT_M
                    == TABLE1.interconnect.wire_energy_per_bit_m)
            assert roofline.WORD_BYTES == TABLE1.interconnect.word_bytes

    def test_unknown_attribute_still_raises(self):
        from repro.core import presets

        with pytest.raises(AttributeError):
            presets.NOT_A_THING
