"""Tests for the cross-point junction options (Fig 3 right)."""

import pytest

from repro.crossbar.selector import CRSJunction, OneR, OneSelectorOneR, Selector
from repro.devices import CRSState
from repro.errors import CrossbarError, DeviceError


class TestOneR:
    def test_digital_interface(self):
        junction = OneR()
        junction.write_bit(1)
        assert junction.as_bit() == 1

    def test_ohmic_at_any_bias(self):
        junction = OneR()
        assert junction.resistance_at(0.1) == junction.resistance_at(0.9)

    def test_state_dependent_resistance(self):
        junction = OneR()
        r_off = junction.resistance()
        junction.write_bit(1)
        assert junction.resistance() < r_off


class TestSelector:
    def test_zero_bias_is_very_resistive(self):
        selector = Selector()
        assert selector.resistance_at(0.0) > 1e6

    def test_current_is_odd_function(self):
        selector = Selector()
        assert selector.current(-0.5) == pytest.approx(-selector.current(0.5))

    def test_nonlinearity_grows_with_voltage(self):
        selector = Selector()
        assert selector.nonlinearity(1.0) > selector.nonlinearity(0.5) > 1.0

    def test_strong_nonlinearity_at_full_select(self):
        # The whole point of a selector: orders of magnitude between
        # full select and half select.
        assert Selector().nonlinearity(1.0) > 100.0

    def test_validation(self):
        with pytest.raises(DeviceError):
            Selector(i0=0.0)
        with pytest.raises(DeviceError):
            Selector().nonlinearity(-1.0)


class TestOneSelectorOneR:
    def test_series_current_below_memristor_alone(self):
        junction = OneSelectorOneR()
        junction.write_bit(1)
        i_with = junction.current_at(0.5)
        i_without = 0.5 / junction.device.resistance()
        assert 0 < i_with < i_without

    def test_bisection_converges(self):
        junction = OneSelectorOneR()
        junction.write_bit(1)
        i = junction.current_at(1.0)
        # Residual of the series equation should be tiny.
        import math

        drop = i * junction.device.resistance() + junction.selector.v0 * math.asinh(
            i / junction.selector.i0
        )
        assert drop == pytest.approx(1.0, rel=1e-6)

    def test_zero_voltage_zero_current(self):
        assert OneSelectorOneR().current_at(0.0) == 0.0

    def test_negative_voltage_negative_current(self):
        junction = OneSelectorOneR()
        junction.write_bit(1)
        assert junction.current_at(-0.5) < 0

    def test_half_select_suppression(self):
        """The chord resistance at half select must be much larger than
        at full select — the sneak suppression mechanism."""
        junction = OneSelectorOneR()
        junction.write_bit(1)
        assert junction.resistance_at(0.5) > 5 * junction.resistance_at(1.0)

    def test_digital_interface(self):
        junction = OneSelectorOneR()
        junction.write_bit(1)
        assert junction.as_bit() == 1


class TestCRSJunction:
    def test_both_states_same_low_bias_resistance(self):
        junction = CRSJunction()
        junction.write_bit(0)
        r0 = junction.resistance()
        junction.write_bit(1)
        r1 = junction.resistance()
        assert r0 == pytest.approx(r1)

    def test_read_window_conduction_for_zero(self):
        junction = CRSJunction()
        junction.write_bit(0)
        vth1, vth2, _, _ = junction.cell.thresholds()
        v_read = 0.5 * (vth1 + vth2)
        assert junction.resistance_at(v_read) < junction.resistance() / 100

    def test_one_state_blocks_at_read_voltage(self):
        junction = CRSJunction()
        junction.write_bit(1)
        vth1, vth2, _, _ = junction.cell.thresholds()
        v_read = 0.5 * (vth1 + vth2)
        assert junction.resistance_at(v_read) == pytest.approx(junction.resistance())

    def test_resistance_at_does_not_mutate(self):
        junction = CRSJunction()
        junction.write_bit(0)
        junction.resistance_at(0.95)
        assert junction.as_bit() == 0

    def test_as_bit_rejects_on_state(self):
        junction = CRSJunction()
        junction.cell.set_state(CRSState.ON)
        with pytest.raises(CrossbarError):
            junction.as_bit()

    def test_write_bit_validation(self):
        with pytest.raises(CrossbarError):
            CRSJunction().write_bit(7)
