"""Bit-identity of the ideal board against the pre-refactor direct paths.

The refactor's contract: routing the analog VMM, the wire-resistance
solve, and the read-margin analysis through
:class:`~repro.board.ideal.IdealSimBoard` changes *no bits* — the board
executes exactly the floating-point operations the consumers used to
run inline.  Each property here replays the legacy computation verbatim
(the literal pre-refactor expressions, kept as inline replicas) and
asserts exact equality — ``==``, not ``allclose`` — across random
shapes, weights, drive patterns, and wire resistances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.analog.crossbar import AnalogCrossbar, AnalogSpec
from repro.board import IdealSimBoard
from repro.crossbar.sneak import read_margin
from repro.crossbar.solver import (
    solve_many_with_wire_resistance,
    solve_with_wire_resistance,
)

shapes = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
weight_elements = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, width=64
)
input_elements = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, width=64
)
wire_resistances = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


@st.composite
def programmed_cases(draw):
    """A (rows, cols) weight matrix plus a batch of input vectors."""
    rows, cols = draw(shapes)
    weights = draw(hnp.arrays(dtype=float, shape=(rows, cols),
                              elements=weight_elements))
    n = draw(st.integers(min_value=1, max_value=4))
    inputs = draw(hnp.arrays(dtype=float, shape=(n, rows),
                             elements=input_elements))
    return weights, inputs


def _legacy_pair(weights, seed=0, levels=0, sigma=0.0):
    """Two identically-seeded crossbars programmed with *weights*: one
    is the subject, the other supplies the conductance matrix for the
    legacy inline replica."""
    rows, cols = weights.shape
    spec = AnalogSpec(levels=levels, sigma=sigma)
    subject = AnalogCrossbar(rows, cols, spec, seed=seed)
    mirror = AnalogCrossbar(rows, cols, spec, seed=seed)
    subject.program(weights)
    mirror.program(weights)
    return subject, mirror.conductances


class TestMatvecBitIdentity:
    @given(case=programmed_cases())
    @settings(max_examples=60, deadline=None)
    def test_ideal_wires_column_currents(self, case):
        """Board path == the legacy ``voltages @ G`` Kirchhoff sum."""
        weights, inputs = case
        subject, g = _legacy_pair(weights)
        for x in inputs:
            voltages = x * subject.spec.v_read
            legacy = voltages @ g
            assert np.array_equal(subject.column_currents(x), legacy)

    @given(case=programmed_cases())
    @settings(max_examples=60, deadline=None)
    def test_ideal_wires_batched(self, case):
        weights, inputs = case
        subject, g = _legacy_pair(weights)
        legacy = (inputs * subject.spec.v_read) @ g
        assert np.array_equal(subject.column_currents_many(inputs), legacy)

    @given(case=programmed_cases())
    @settings(max_examples=60, deadline=None)
    def test_weight_domain_matvec(self, case):
        """matvec's unmapping sits on top of the board path unchanged."""
        weights, inputs = case
        subject, g = _legacy_pair(weights)
        spec = subject.spec
        for x in inputs:
            currents = (x * spec.v_read) @ g
            span = subject._w_max - subject._w_min
            slope = spec.g_max - spec.g_min
            sum_x = x.sum()
            legacy = ((currents / spec.v_read - spec.g_min * sum_x)
                      / slope * span + subject._w_min * sum_x)
            assert np.array_equal(subject.matvec(x), legacy)

    @given(case=programmed_cases())
    @settings(max_examples=60, deadline=None)
    def test_quantised_programming_unchanged(self, case):
        """Levels + sigma run through the same rng stream, so programmed
        conductances (and thus results) stay identical."""
        weights, inputs = case
        subject, g = _legacy_pair(weights, seed=7, levels=8, sigma=0.05)
        assert np.array_equal(subject.conductances, g)
        legacy = (inputs * subject.spec.v_read) @ g
        assert np.array_equal(subject.column_currents_many(inputs), legacy)


class TestWireResistanceBitIdentity:
    @given(case=programmed_cases(), r_wire=wire_resistances)
    @settings(max_examples=30, deadline=None)
    def test_single_vector_ir_drop(self, case, r_wire):
        """Board path builds the exact legacy drive dicts, so the nodal
        solve sees an identical system."""
        weights, inputs = case
        subject, g = _legacy_pair(weights)
        rows, cols = weights.shape
        for x in inputs:
            voltages = x * subject.spec.v_read
            row_drive = {i: float(voltages[i]) for i in range(rows)}
            col_drive = {j: 0.0 for j in range(cols)}
            legacy = solve_with_wire_resistance(
                g, row_drive, col_drive, wire_resistance=r_wire,
                backend="auto",
            ).col_currents
            got = subject.column_currents(x, wire_resistance=r_wire)
            assert np.array_equal(got, legacy)

    @given(case=programmed_cases(), r_wire=wire_resistances)
    @settings(max_examples=30, deadline=None)
    def test_batched_ir_drop(self, case, r_wire):
        weights, inputs = case
        subject, g = _legacy_pair(weights)
        rows, cols = weights.shape
        voltages = inputs * subject.spec.v_read
        col_drive = {j: 0.0 for j in range(cols)}
        drives = [
            ({i: float(row[i]) for i in range(rows)}, col_drive)
            for row in voltages
        ]
        legacy = np.stack([
            solution.col_currents
            for solution in solve_many_with_wire_resistance(
                g, drives, wire_resistance=r_wire, backend="auto")
        ])
        got = subject.column_currents_many(inputs, wire_resistance=r_wire)
        assert np.array_equal(got, legacy)


class TestReadMarginBitIdentity:
    @given(
        n=st.integers(min_value=2, max_value=8),
        v_read=st.floats(min_value=0.5, max_value=1.2, allow_nan=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_ideal_wires_margin(self, n, v_read):
        direct = read_margin(n, n, v_read=v_read)
        routed = read_margin(n, n, v_read=v_read,
                             board=IdealSimBoard(n, n))
        assert routed.current_high == direct.current_high
        assert routed.current_low == direct.current_low

    @given(
        n=st.integers(min_value=2, max_value=8),
        r_wire=wire_resistances,
    )
    @settings(max_examples=25, deadline=None)
    def test_rank1_wire_margin(self, n, r_wire):
        """The rank-1 what-if fast path routes through
        ``Board.read_iv_variants`` bit-identically."""
        direct = read_margin(n, n, wire_resistance=r_wire)
        routed = read_margin(n, n, wire_resistance=r_wire,
                             board=IdealSimBoard(n, n))
        assert routed.current_high == direct.current_high
        assert routed.current_low == direct.current_low
