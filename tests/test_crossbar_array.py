"""Tests for repro.crossbar.array."""

import numpy as np
import pytest

from repro.crossbar import CrossbarArray
from repro.crossbar.selector import OneR
from repro.errors import CrossbarError


class TestConstruction:
    def test_default_junctions_are_memristors(self):
        array = CrossbarArray(3, 4)
        assert array.rows == 3
        assert array.cols == 4
        assert array.size == 12
        assert array.cell(0, 0).as_bit() == 0

    def test_custom_factory(self):
        array = CrossbarArray(2, 2, lambda r, c: OneR())
        assert isinstance(array.cell(1, 1), OneR)

    def test_factory_receives_coordinates(self):
        seen = []
        CrossbarArray(2, 3, lambda r, c: seen.append((r, c)) or OneR())
        assert (1, 2) in seen
        assert len(seen) == 6

    def test_rejects_bad_dimensions(self):
        with pytest.raises(CrossbarError):
            CrossbarArray(0, 4)
        with pytest.raises(CrossbarError):
            CrossbarArray(4, -1)

    def test_cells_are_distinct_objects(self):
        array = CrossbarArray(2, 2)
        array.cell(0, 0).write_bit(1)
        assert array.cell(0, 1).as_bit() == 0


class TestAddressing:
    def test_out_of_range_rejected(self):
        array = CrossbarArray(2, 2)
        with pytest.raises(CrossbarError):
            array.cell(2, 0)
        with pytest.raises(CrossbarError):
            array.cell(0, -1)

    def test_set_cell(self):
        array = CrossbarArray(2, 2)
        replacement = OneR()
        array.set_cell(1, 0, replacement)
        assert array.cell(1, 0) is replacement

    def test_iter_cells_covers_all(self):
        array = CrossbarArray(3, 3)
        coords = {(r, c) for r, c, _ in array.iter_cells()}
        assert len(coords) == 9


class TestPatterns:
    def test_write_read_round_trip(self):
        array = CrossbarArray(2, 3)
        pattern = [[1, 0, 1], [0, 1, 0]]
        array.write_pattern(pattern)
        assert array.read_pattern() == pattern

    def test_fill(self):
        array = CrossbarArray(2, 2)
        array.fill(1)
        assert array.read_pattern() == [[1, 1], [1, 1]]

    def test_shape_mismatch_rejected(self):
        array = CrossbarArray(2, 2)
        with pytest.raises(CrossbarError):
            array.write_pattern([[1, 0]])
        with pytest.raises(CrossbarError):
            array.write_pattern([[1], [0]])

    def test_non_writable_junction_rejected(self):
        array = CrossbarArray(1, 1, lambda r, c: object())
        with pytest.raises(CrossbarError):
            array.write_pattern([[1]])
        with pytest.raises(CrossbarError):
            array.read_pattern()


class TestConductanceMatrix:
    def test_shape_and_values(self):
        array = CrossbarArray(2, 2)
        array.write_pattern([[1, 0], [0, 1]])
        g = array.conductance_matrix()
        assert g.shape == (2, 2)
        device = array.cell(0, 0)
        assert g[0, 0] == pytest.approx(1.0 / device.resistance())
        assert g[0, 0] > g[0, 1]

    def test_all_positive(self):
        g = CrossbarArray(4, 4).conductance_matrix()
        assert (g > 0).all()
