"""Property tests: the engine's executors agree bit-for-bit.

The ISSUE 3 acceptance criteria, hypothesis-enforced: the vectorised
functional batch executor is bit-identical to the electrical reference
on the IMPLY comparator and the 32-bit TC-adder, over random operand
batches.  The register allocator's renaming is also proved
semantics-preserving on random netlists, including the output-as-
intermediate-operand corner the liveness analysis must protect.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_network, random_network, reuse_registers
from repro.engine import (
    adder_kernel,
    cam_match_kernel,
    comparator_kernel,
    run_kernel,
)
from repro.logic.program import ImplyProgram

word32 = st.integers(min_value=0, max_value=2**32 - 1)
nucleotide = st.integers(min_value=0, max_value=3)

THREE_BACKENDS = ("functional", "functional_bitplane", "electrical")


def assert_backends_identical(kernel, operands):
    """Run *kernel* on all three simulating backends and require every
    output signal to match bit for bit."""
    results = {
        backend: run_kernel(kernel, operands, backend=backend)
        for backend in THREE_BACKENDS
    }
    reference = results["functional"]
    for backend, result in results.items():
        assert set(result.outputs) == set(reference.outputs), backend
        for signal, bits in reference.outputs.items():
            assert np.array_equal(result.outputs[signal], bits), (
                backend, signal)
    return reference


class TestExecutorEquivalence:
    @given(st.lists(st.tuples(nucleotide, nucleotide),
                    min_size=1, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_comparator_functional_equals_electrical(self, pairs):
        kernel = comparator_kernel()
        operands = {
            "a": [a for a, _ in pairs],
            "b": [b for _, b in pairs],
        }
        functional = run_kernel(kernel, operands)
        electrical = run_kernel(kernel, operands, backend="electrical")
        assert np.array_equal(functional.bit("match"),
                              electrical.bit("match"))
        golden = np.array([int(a == b) for a, b in pairs], dtype=np.uint8)
        assert np.array_equal(functional.bit("match"), golden)

    @given(st.lists(st.tuples(word32, word32), min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_adder32_functional_equals_electrical(self, pairs):
        kernel = adder_kernel(32)
        operands = {
            "a": [a for a, _ in pairs],
            "b": [b for _, b in pairs],
        }
        functional = run_kernel(kernel, operands)
        electrical = run_kernel(kernel, operands, backend="electrical")
        assert np.array_equal(functional.word("sum"),
                              electrical.word("sum"))
        assert np.array_equal(functional.bit("cout"), electrical.bit("cout"))
        golden = np.array([(a + b) & 0xFFFFFFFF for a, b in pairs],
                          dtype=np.uint64)
        assert np.array_equal(functional.word("sum"), golden)
        carries = np.array([(a + b) >> 32 for a, b in pairs], dtype=np.uint8)
        assert np.array_equal(functional.bit("cout"), carries)


class TestThreeWayEquivalence:
    """functional == functional_bitplane == electrical, bit for bit,
    across kernels, operand widths, and batch sizes that straddle the
    64-word plane-lane boundary (1 word and 65 words included)."""

    @pytest.mark.parametrize("words", [1, 65])
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_comparator(self, words, data):
        values = data.draw(st.lists(
            st.tuples(nucleotide, nucleotide),
            min_size=words, max_size=words))
        kernel = comparator_kernel()
        operands = {"a": [a for a, _ in values],
                    "b": [b for _, b in values]}
        reference = assert_backends_identical(kernel, operands)
        golden = np.array([int(a == b) for a, b in values], dtype=np.uint8)
        assert np.array_equal(reference.bit("match"), golden)

    @pytest.mark.parametrize("width", [8, 32])
    @pytest.mark.parametrize("words", [1, 65])
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_adder(self, width, words, data):
        word = st.integers(min_value=0, max_value=2**width - 1)
        values = data.draw(st.lists(
            st.tuples(word, word), min_size=words, max_size=words))
        kernel = adder_kernel(width)
        operands = {"a": [a for a, _ in values],
                    "b": [b for _, b in values]}
        reference = assert_backends_identical(kernel, operands)
        mask = (1 << width) - 1
        golden = np.array([(a + b) & mask for a, b in values],
                          dtype=np.uint64)
        assert np.array_equal(reference.word("sum"), golden)
        carries = np.array([(a + b) >> width for a, b in values],
                           dtype=np.uint8)
        assert np.array_equal(reference.bit("cout"), carries)

    @pytest.mark.parametrize("width", [4, 16])
    @pytest.mark.parametrize("words", [1, 65])
    @given(data=st.data())
    @settings(max_examples=5, deadline=None)
    def test_cam_match(self, width, words, data):
        word = st.integers(min_value=0, max_value=2**width - 1)
        values = data.draw(st.lists(
            st.tuples(word, word), min_size=words, max_size=words))
        kernel = cam_match_kernel(width)
        operands = {"a": [a for a, _ in values],
                    "b": [b for _, b in values]}
        reference = assert_backends_identical(kernel, operands)
        golden = np.array([int(a == b) for a, b in values], dtype=np.uint8)
        assert np.array_equal(reference.bit("match"), golden)


class TestAllocatorProperty:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gates=st.integers(min_value=3, max_value=25),
    )
    @settings(max_examples=50, deadline=None)
    def test_allocation_preserves_semantics(self, seed, gates):
        """Allocated and unallocated programs are bit-identical on every
        input assignment of a random netlist."""
        network = random_network(inputs=4, gates=gates, outputs=3, seed=seed)
        program = compile_network(network)
        compact = reuse_registers(program)
        assert compact.step_count == program.step_count
        assert compact.device_count <= program.device_count
        for pattern in range(2 ** len(network.inputs)):
            assignment = {
                signal: (pattern >> lane) & 1
                for lane, signal in enumerate(network.inputs)
            }
            assert (compact.run_functional(assignment)
                    == program.run_functional(assignment))

    def test_output_reused_as_intermediate_operand(self):
        """Regression: an output register that later feeds another gate
        must not be recycled by the allocator before that read.

        ``first`` is an output *and* an operand of the gate producing
        ``second``; a liveness bug that frees output registers at their
        last definition (instead of keeping them live to the end) would
        corrupt ``first`` when ``t`` reuses its slot.
        """
        program = ImplyProgram(
            "OUT_AS_OPERAND",
            inputs=["x", "y"],
            outputs={"first": "o1", "second": "o2"},
        )
        program.load("rx", "x")
        program.load("ry", "y")
        # o1 = NOT x  (FALSE o1; x IMP o1)
        program.false("o1")
        program.imp("rx", "o1")
        # t = NOT o1 — reads the *output* register o1 after its definition.
        program.false("t")
        program.imp("o1", "t")
        # o2 = t IMP y = !t | y
        program.load("o2", "y")
        program.imp("t", "o2")
        program.validate()
        compact = reuse_registers(program)
        for x in (0, 1):
            for y in (0, 1):
                # first = !x; t = !first = x; second = !t | y = !x | y
                expected = {"first": 1 - x, "second": (1 - x) | y}
                assignment = {"x": x, "y": y}
                assert program.run_functional(assignment) == expected
                assert compact.run_functional(assignment) == expected
