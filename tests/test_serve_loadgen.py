"""The synthetic load generator: determinism, skew, burstiness.

The benches and cluster tests lean on three loadgen promises: the same
profile generates the identical request list in every process; the
zipfian law actually skews (hot shapes and hot tenants exist); and the
MMPP arrival schedule actually bursts (gap distribution is bimodal,
not uniform).  Each is pinned here, plus the run_load reduction.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ServeError, ServerOverloaded
from repro.serve.loadgen import (
    LoadProfile,
    LoadReport,
    arrival_gaps,
    generate,
    run_load,
)
from repro.serve.server import KernelServer


class TestGenerate:
    def test_same_profile_generates_identical_requests(self):
        profile = LoadProfile(shapes=16, seed=21)
        first = generate(profile, 64)
        second = generate(profile, 64)
        assert first == second
        assert [r.digest for r in first] == [r.digest for r in second]

    def test_different_seeds_generate_different_mixes(self):
        base = LoadProfile(shapes=16, seed=1)
        other = LoadProfile(shapes=16, seed=2)
        assert ([r.digest for r in generate(base, 64)]
                != [r.digest for r in generate(other, 64)])

    def test_zipfian_skew_makes_hot_shapes_and_tenants(self):
        profile = LoadProfile(shapes=32, zipf_s=1.3, tenants=8, seed=5)
        requests = generate(profile, 512)
        by_shape: dict = {}
        by_tenant: dict = {}
        for request in requests:
            by_shape[request.digest] = by_shape.get(request.digest, 0) + 1
            by_tenant[request.tenant] = by_tenant.get(request.tenant, 0) + 1
        shape_counts = sorted(by_shape.values(), reverse=True)
        # A genuinely skewed mix: the hottest shape dwarfs the median.
        assert shape_counts[0] >= 4 * shape_counts[len(shape_counts) // 2]
        assert max(by_tenant.values()) > min(by_tenant.values())

    def test_requests_are_well_formed(self):
        profile = LoadProfile(
            kernels=(("adder", 16), ("comparator", 2)), shapes=8,
            words=4, deadline_fraction=0.5, seed=9)
        requests = generate(profile, 64)
        deadlines = [r for r in requests if r.deadline_s is not None]
        assert deadlines, "deadline_fraction=0.5 produced no deadlines"
        assert len(deadlines) < len(requests), "not everything has one"
        low, high = profile.deadline_range_s
        for request in requests:
            assert request.id.startswith("load-")
            assert request.tenant.startswith("tenant-")
            assert set(request.operands) == {"a", "b"}
            if request.kernel == "comparator":
                assert all(word < 4 for word in request.operands["a"])
            if request.deadline_s is not None:
                assert low <= request.deadline_s <= high

    def test_profile_validation(self):
        for bad in (dict(kernels=()), dict(shapes=0), dict(words=0),
                    dict(tenants=0), dict(deadline_fraction=1.5)):
            with pytest.raises(ServeError):
                LoadProfile(**bad)


class TestArrivalGaps:
    def test_closed_loop_profile_has_no_gaps(self):
        assert arrival_gaps(LoadProfile(), 32) == [0.0] * 32

    def test_mmpp_gaps_are_bursty_and_deterministic(self):
        profile = LoadProfile(rate_hz=100.0, burst_rate_hz=10_000.0,
                              p_burst=0.2, p_calm=0.2, seed=3)
        gaps = arrival_gaps(profile, 256)
        assert gaps == arrival_gaps(profile, 256)
        assert len(gaps) == 256 and all(g >= 0.0 for g in gaps)
        # Bimodal: plenty of gaps far below the calm mean (burst mode)
        # AND gaps near/above it — a uniform Poisson shows no such gulf.
        calm_mean = 1.0 / 100.0
        burst_like = [g for g in gaps if g < calm_mean / 10]
        calm_like = [g for g in gaps if g > calm_mean / 2]
        assert len(burst_like) > 16, "burst state never engaged"
        assert len(calm_like) > 16, "calm state never engaged"

    def test_pacing_does_not_perturb_the_request_mix(self):
        calm = LoadProfile(seed=4)
        paced = LoadProfile(rate_hz=50.0, seed=4)
        assert ([r.digest for r in generate(calm, 32)]
                == [r.digest for r in generate(paced, 32)])


class TestRunLoad:
    def test_report_tallies_and_latencies(self):
        profile = LoadProfile(shapes=4, words=2, seed=6)

        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                first = await run_load(server, profile, count=24)
                again = await run_load(server, profile, count=24)
                return first, again

        report, again = asyncio.run(scenario())
        assert report.requests == 24
        assert report.served == 24
        # The replay of the same deterministic mix is fully cached.
        assert again.counts == {"cached": 24}
        assert len(report.latencies_s) == 24
        assert report.energy_j > 0.0
        assert report.throughput_rps > 0.0
        assert (report.latency_quantile(0.5)
                <= report.latency_quantile(0.99))
        assert "p99" in report.describe()

    def test_shed_requests_are_counted_not_raised(self):
        profile = LoadProfile(shapes=2, words=1, seed=8)

        class AlwaysFull:
            async def submit(self, request):
                raise ServerOverloaded("full")

        report = asyncio.run(run_load(AlwaysFull(), profile, count=10))
        assert report.counts == {"rejected": 10}
        assert report.served == 0
        assert report.latencies_s == []

    def test_empty_report_quantile(self):
        assert LoadReport().latency_quantile(0.99) == 0.0
