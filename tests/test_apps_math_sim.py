"""Tests for the math application and the functional CIM machine."""

import numpy as np
import pytest

from repro.apps.math import CIMVectorAdder, add_vectors_reference
from repro.errors import ArchitectureError, WorkloadError
from repro.sim import EnergyTrace, FunctionalCIM


class TestReferenceAdd:
    def test_elementwise(self):
        out = add_vectors_reference([1, 2, 3], [4, 5, 6])
        assert list(out) == [5, 7, 9]

    def test_wraps_modulo(self):
        out = add_vectors_reference([2**32 - 1], [1], width=32)
        assert list(out) == [0]

    def test_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            add_vectors_reference([1], [1, 2])

    def test_range_check(self):
        with pytest.raises(WorkloadError):
            add_vectors_reference([256], [0], width=8)


class TestCIMVectorAdder:
    def test_matches_numpy(self):
        adder = CIMVectorAdder(width=8)
        report = adder.add_vectors([1, 200, 33, 255], [7, 55, 99, 255])
        assert list(report.sums) == [8, 255, 132, 254]

    def test_report_costs(self):
        adder = CIMVectorAdder(width=8)
        report = adder.add_vectors([1], [2])
        assert report.tc_adder_steps_per_add == 4 * 8 + 5
        assert report.imply_steps_per_add == adder.program.step_count
        assert report.tc_adder_energy > 0

    def test_single_add(self):
        assert CIMVectorAdder(width=4).add(7, 8) == 15

    def test_width_guard(self):
        with pytest.raises(WorkloadError):
            CIMVectorAdder(width=32)


class TestEnergyTrace:
    def test_totals(self):
        trace = EnergyTrace()
        trace.record("read", "x", 1, 1e-15, 1e-9)
        trace.record("logic", "y", 10, 5e-15, 2e-9)
        assert trace.total_steps == 11
        assert trace.total_energy == pytest.approx(6e-15)
        assert trace.total_latency == pytest.approx(3e-9)

    def test_by_kind(self):
        trace = EnergyTrace()
        trace.record("read", "a", 1, 1.0, 1.0)
        trace.record("read", "b", 2, 2.0, 2.0)
        trace.record("write", "c", 3, 3.0, 3.0)
        grouped = trace.by_kind()
        assert grouped["read"] == (3, 3.0, 3.0)
        assert grouped["write"] == (3, 3.0, 3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ArchitectureError):
            EnergyTrace().record("read", "x", -1, 0.0, 0.0)

    def test_summary_text(self):
        trace = EnergyTrace()
        trace.record("logic", "x", 5, 5e-15, 1e-9)
        assert "logic" in trace.summary()


class TestFunctionalCIM:
    def test_store_load_round_trip(self):
        machine = FunctionalCIM(words=4, width=8)
        machine.store(2, 173)
        assert machine.load(2) == 173

    def test_store_many(self):
        machine = FunctionalCIM(words=4, width=8)
        machine.store_many([10, 20, 30], base=1)
        assert machine.load(1) == 10
        assert machine.load(3) == 30

    def test_compare_all_finds_matches(self):
        machine = FunctionalCIM(words=6, width=8)
        machine.store_many([9, 1, 9, 9, 0, 5])
        result = machine.compare_all(9)
        assert result.values == [0, 2, 3]

    def test_compare_all_no_match(self):
        machine = FunctionalCIM(words=3, width=4)
        machine.store_many([1, 2, 3])
        assert machine.compare_all(9).values == []

    def test_add_arrays(self):
        machine = FunctionalCIM(words=4, width=8, lanes=2)
        result = machine.add_arrays([1, 2, 3, 250], [4, 5, 6, 10])
        assert result.values == [5, 7, 9, 4]

    def test_add_arrays_length_check(self):
        machine = FunctionalCIM(words=2, width=4)
        with pytest.raises(ArchitectureError):
            machine.add_arrays([1], [1, 2])

    def test_add_arrays_range_check(self):
        machine = FunctionalCIM(words=2, width=4)
        with pytest.raises(ArchitectureError):
            machine.add_arrays([16], [0])

    def test_lane_parallelism_reduces_latency(self):
        serial = FunctionalCIM(words=8, width=4, lanes=1)
        parallel = FunctionalCIM(words=8, width=4, lanes=8)
        x, y = [1] * 8, [2] * 8
        serial.add_arrays(x, y)
        parallel.add_arrays(x, y)
        logic_serial = serial.trace.by_kind()["logic"]
        logic_parallel = parallel.trace.by_kind()["logic"]
        assert logic_parallel[2] == pytest.approx(logic_serial[2] / 8)
        # Energy is identical: parallelism saves time, not joules.
        assert logic_parallel[1] == pytest.approx(logic_serial[1])

    def test_crs_storage_mode(self):
        machine = FunctionalCIM(words=4, width=4, cell_kind="CRS")
        machine.store(0, 5)
        assert machine.load(0) == 5
        assert machine.load(0) == 5   # destructive read healed

    def test_trace_accumulates(self):
        machine = FunctionalCIM(words=2, width=4)
        machine.store(0, 3)
        machine.load(0)
        machine.compare_all(3)
        kinds = set(machine.trace.by_kind())
        assert {"write", "read", "logic"} <= kinds

    def test_width_guard(self):
        with pytest.raises(ArchitectureError):
            FunctionalCIM(words=2, width=32)

    def test_lanes_guard(self):
        with pytest.raises(ArchitectureError):
            FunctionalCIM(words=2, width=4, lanes=0)
