"""Tests for write-disturb analysis, the roofline model, and in-array
program execution."""

import math

import pytest

from repro.crossbar import (
    CrossbarArray,
    FloatingBias,
    VHalfBias,
    VThirdBias,
    compare_schemes,
    ecm_disturb_report,
    max_writes_per_row,
    solved_unselected_stress,
    solved_unselected_stress_sweep,
    threshold_disturb_free,
)
from repro.core import (
    Roofline,
    cim_dna_machine,
    cim_math_machine,
    cim_roofline,
    conventional_dna_machine,
    conventional_math_machine,
    conventional_roofline,
    dna_paper_workload,
    intensity_sweep,
    math_paper_workload,
    workload_intensity,
)
from repro.devices import ECMMemristor
from repro.errors import ArchitectureError, CrossbarError, LogicError
from repro.logic import build_gate, ripple_adder_program
from repro.sim import RowRegisterFile


class TestThresholdDisturb:
    def test_vhalf_safe_for_threshold_devices(self):
        # Threshold 1.0 V, write 1.4 V: V/2 stress 0.7 V < 1.0 V.
        assert threshold_disturb_free(VHalfBias(), 1.4)

    def test_floating_unsafe(self):
        assert not threshold_disturb_free(FloatingBias(), 1.4)

    def test_vthird_allows_higher_write_voltage(self):
        # V/3 keeps cells safe up to 3x the threshold.
        assert threshold_disturb_free(VThirdBias(), 2.9)
        assert not threshold_disturb_free(VHalfBias(), 2.9)


class TestStressSweep:
    def test_sweep_matches_single_solves(self):
        scheme = VHalfBias()
        cells = [(0, 0), (1, 2), (3, 3)]
        for wr in (None, 2.0):
            sweep = solved_unselected_stress_sweep(
                scheme, 1.2, 4, 4, selected=cells, wire_resistance=wr)
            singles = [
                solved_unselected_stress(
                    scheme, 1.2, 4, 4, sel_row=r, sel_col=c,
                    wire_resistance=wr)
                for r, c in cells
            ]
            assert sweep == pytest.approx(singles, rel=1e-9)

    def test_sweep_defaults_to_full_disturb_map(self):
        sweep = solved_unselected_stress_sweep(VThirdBias(), 1.2, 3, 3)
        assert len(sweep) == 9

    def test_same_structure_patterns_share_one_factorization(self):
        from repro.crossbar import clear_factorization_cache
        from repro.crossbar.solver import _CACHE_MISS

        clear_factorization_cache()
        before = _CACHE_MISS.value
        solved_unselected_stress_sweep(
            VHalfBias(), 1.2, 4, 4, wire_resistance=2.0)  # 16 cells
        assert _CACHE_MISS.value == before + 1

    def test_sweep_validates_selected_cells(self):
        with pytest.raises(CrossbarError, match=r"\(4, 0\)"):
            solved_unselected_stress_sweep(
                VHalfBias(), 1.2, 4, 4, selected=[(4, 0)])
        with pytest.raises(CrossbarError):
            solved_unselected_stress_sweep(VHalfBias(), 0.0, 4, 4)


class TestECMDisturb:
    def test_below_nucleation_is_disturb_free(self):
        # Write 0.72 V: V/3 stress 0.24 V < 0.25 V nucleation.
        report = ecm_disturb_report(VThirdBias(), 0.72)
        assert report.disturb_free
        assert report.drift_per_event == 0.0

    def test_above_nucleation_disturbs(self):
        report = ecm_disturb_report(VHalfBias(), 0.72)
        assert not report.disturb_free
        assert report.events_to_failure < 100

    def test_scheme_selection_story(self):
        """At a 0.72 V write on the default ECM cell, V/3 is the only
        disturb-free scheme — the Section IV.B selection argument."""
        reports = {r.scheme: r for r in compare_schemes(0.72)}
        assert reports["v/3"].disturb_free
        assert not reports["v/2"].disturb_free
        assert not reports["floating"].disturb_free

    def test_stress_ordering(self):
        reports = {r.scheme: r for r in compare_schemes(1.2)}
        assert (reports["v/3"].stress_voltage
                < reports["v/2"].stress_voltage
                < reports["floating"].stress_voltage)

    def test_gentler_kinetics_survive_longer(self):
        harsh = ECMMemristor()
        gentle = ECMMemristor(v0=0.2, tau0=1e-6)
        r_harsh = ecm_disturb_report(VHalfBias(), 0.72, harsh)
        r_gentle = ecm_disturb_report(VHalfBias(), 0.72, gentle)
        assert r_gentle.events_to_failure > r_harsh.events_to_failure

    def test_max_writes_per_row(self):
        assert math.isinf(max_writes_per_row(VThirdBias(), 0.72, 64))
        finite = max_writes_per_row(VHalfBias(), 0.72, 64)
        assert finite < 10

    def test_validation(self):
        with pytest.raises(CrossbarError):
            ecm_disturb_report(VHalfBias(), -1.0)
        with pytest.raises(CrossbarError):
            ecm_disturb_report(VHalfBias(), 1.0, pulse_width=0.0)
        with pytest.raises(CrossbarError):
            ecm_disturb_report(VHalfBias(), 1.0, failure_margin=0.0)
        with pytest.raises(CrossbarError):
            max_writes_per_row(VHalfBias(), 1.0, 1)


class TestRoofline:
    def test_attainable_clips_at_peak(self):
        roofline = Roofline("m", peak=100.0, bandwidth=10.0)
        assert roofline.attainable(1.0) == 10.0
        assert roofline.attainable(100.0) == 100.0
        assert roofline.ridge_intensity == 10.0

    def test_memory_bound_predicate(self):
        roofline = Roofline("m", peak=100.0, bandwidth=10.0)
        assert roofline.is_memory_bound(1.0)
        assert not roofline.is_memory_bound(20.0)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            Roofline("m", peak=0.0, bandwidth=1.0)
        with pytest.raises(ArchitectureError):
            Roofline("m", peak=1.0, bandwidth=1.0).attainable(0.0)

    def test_paper_workloads_memory_bound_on_conventional(self):
        """The memory-wall claim: both Table 2 workloads sit far below
        the conventional ridge point."""
        for machine, workload in [
            (conventional_dna_machine(), dna_paper_workload()),
            (conventional_math_machine(), math_paper_workload()),
        ]:
            roofline = conventional_roofline(machine)
            intensity = workload_intensity(workload)
            assert roofline.is_memory_bound(intensity)
            assert intensity < roofline.ridge_intensity / 100

    def test_cim_moves_the_ridge(self):
        """CIM's internal bandwidth scales with units, pushing the ridge
        far left of the conventional one."""
        conv = conventional_roofline(conventional_dna_machine())
        cim = cim_roofline(cim_dna_machine("paper"))
        assert cim.ridge_intensity < conv.ridge_intensity / 100

    def test_cim_attains_more_at_low_intensity(self):
        conv = conventional_roofline(conventional_dna_machine())
        cim = cim_roofline(cim_dna_machine("paper"))
        intensity = workload_intensity(dna_paper_workload())
        assert cim.attainable(intensity) > 10 * conv.attainable(intensity)

    def test_intensity_sweep_shape(self):
        conv = conventional_roofline(conventional_math_machine())
        rows = intensity_sweep([conv], intensities=(0.01, 0.1, 1.0))
        values = [row[conv.machine] for row in rows]
        assert values == sorted(values)

    def test_workload_intensity(self):
        assert workload_intensity(math_paper_workload()) == pytest.approx(
            1.0 / (3 * 4)
        )


class TestRowRegisterFile:
    def make_array(self):
        array = CrossbarArray(4, 8)
        array.write_pattern([
            [1, 0, 1, 0, 1, 0, 1, 0],
            [0] * 8,
            [1] * 8,
            [0, 1, 0, 1, 0, 1, 0, 1],
        ])
        return array

    @pytest.mark.parametrize("a,b", [(0, 0), (0, 1), (1, 0), (1, 1)])
    def test_gate_in_row_correct(self, a, b):
        array = self.make_array()
        rf = RowRegisterFile(array, row=1)
        report = rf.run(build_gate("XOR"), {"a": a, "b": b})
        assert report.outputs["out"] == a ^ b

    def test_data_rows_untouched(self):
        array = self.make_array()
        before = array.read_pattern()
        rf = RowRegisterFile(array, row=1)
        rf.run(build_gate("AND"), {"a": 1, "b": 1})
        after = array.read_pattern()
        for row in (0, 2, 3):
            assert after[row] == before[row]

    def test_register_overflow_detected(self):
        array = CrossbarArray(2, 4)
        rf = RowRegisterFile(array, row=0)
        with pytest.raises(LogicError):
            rf.run(ripple_adder_program(4), {
                **{f"a{i}": 0 for i in range(4)},
                **{f"b{i}": 0 for i in range(4)},
            })

    def test_costs_accounted(self):
        array = self.make_array()
        rf = RowRegisterFile(array, row=1)
        program = build_gate("NAND")
        report = rf.run(program, {"a": 1, "b": 0})
        assert report.steps == program.step_count
        assert report.energy > 0

    def test_row_bounds_checked(self):
        with pytest.raises(LogicError):
            RowRegisterFile(CrossbarArray(2, 4), row=5)

    def test_missing_input_raises(self):
        rf = RowRegisterFile(self.make_array(), row=1)
        with pytest.raises(LogicError):
            rf.run(build_gate("NOT"), {})

    def test_one_r_junction_arrays_supported(self):
        from repro.crossbar import OneR

        array = CrossbarArray(2, 6, lambda r, c: OneR())
        rf = RowRegisterFile(array, row=0)
        report = rf.run(build_gate("OR"), {"a": 0, "b": 1})
        assert report.outputs["out"] == 1

    def test_crs_junction_rejected(self):
        from repro.crossbar import CRSJunction

        array = CrossbarArray(2, 6, lambda r, c: CRSJunction())
        rf = RowRegisterFile(array, row=0)
        with pytest.raises(LogicError):
            rf.run(build_gate("NOT"), {"a": 1})
