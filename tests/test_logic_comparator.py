"""Tests for the IMPLY comparators (the Table 1 DNA compute unit)."""

import itertools

import pytest

from repro.errors import LogicError
from repro.logic import (
    ComparatorCost,
    ImplyMachine,
    nucleotide_comparator_program,
    word_comparator_program,
)
from repro.units import FJ, NS


class TestNucleotideComparator:
    def test_exhaustive_match_semantics(self):
        prog = nucleotide_comparator_program()
        for bits in itertools.product((0, 1), repeat=4):
            inputs = dict(zip(prog.inputs, bits))
            want = 1 if (inputs["a1"], inputs["a0"]) == (inputs["b1"], inputs["b0"]) else 0
            assert prog.run_functional(inputs)["match"] == want

    def test_electrical_agreement(self):
        prog = nucleotide_comparator_program()
        for bits in itertools.product((0, 1), repeat=4):
            machine = ImplyMachine()
            machine.run_and_check(prog, dict(zip(prog.inputs, bits)))

    def test_validates(self):
        nucleotide_comparator_program().validate()

    def test_device_count_close_to_paper(self):
        """Paper: 13 memristors.  Ours: 4 inputs + 2x3 XOR scratch + 1
        combine register = 11; within the same design point."""
        prog = nucleotide_comparator_program()
        assert prog.device_count <= 13


class TestComparatorCost:
    """Each assertion quotes one Table 1 CIM-healthcare line."""

    def test_13_memristors(self):
        assert ComparatorCost().memristors == 13

    def test_16_steps(self):
        assert ComparatorCost().steps == 16

    def test_latency_3_2_ns(self):
        assert ComparatorCost().latency == pytest.approx(3.2 * NS)

    def test_dynamic_energy_45_fj(self):
        assert ComparatorCost().dynamic_energy == pytest.approx(45 * FJ)

    def test_static_energy_zero(self):
        assert ComparatorCost().static_energy == 0.0

    def test_area(self):
        assert ComparatorCost().area == pytest.approx(1.3e-3 * 1e-12)

    def test_energy_per_comparison(self):
        cost = ComparatorCost()
        assert cost.energy_per_comparison() == pytest.approx(45 * FJ)


class TestWordComparator:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_equal_words_match(self, width):
        prog = word_comparator_program(width)
        value = (1 << width) - 2 if width > 1 else 1
        inputs = {f"a{i}": (value >> i) & 1 for i in range(width)}
        inputs.update({f"b{i}": (value >> i) & 1 for i in range(width)})
        assert prog.run_functional(inputs)["match"] == 1

    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_single_bit_difference_detected(self, width):
        prog = word_comparator_program(width)
        for flip in range(width):
            inputs = {f"a{i}": 0 for i in range(width)}
            inputs.update({f"b{i}": 1 if i == flip else 0 for i in range(width)})
            assert prog.run_functional(inputs)["match"] == 0, flip

    def test_exhaustive_3bit(self):
        prog = word_comparator_program(3)
        for x in range(8):
            for y in range(8):
                inputs = {f"a{i}": (x >> i) & 1 for i in range(3)}
                inputs.update({f"b{i}": (y >> i) & 1 for i in range(3)})
                assert prog.run_functional(inputs)["match"] == int(x == y)

    def test_electrical_agreement_2bit(self):
        prog = word_comparator_program(2)
        for x in range(4):
            for y in range(4):
                machine = ImplyMachine()
                inputs = {f"a{i}": (x >> i) & 1 for i in range(2)}
                inputs.update({f"b{i}": (y >> i) & 1 for i in range(2)})
                machine.run_and_check(prog, inputs)

    def test_steps_scale_linearly(self):
        s2 = word_comparator_program(2).compute_step_count
        s4 = word_comparator_program(4).compute_step_count
        s8 = word_comparator_program(8).compute_step_count
        assert s4 - s2 == (s8 - s4) / 2

    def test_rejects_zero_width(self):
        with pytest.raises(LogicError):
            word_comparator_program(0)
