"""The sharded cluster layer: routing, shared cache, quotas, billing.

Covers the PR 10 cluster guarantees:

* **Routing stability** (hypothesis property) — consistent hashing uses
  SHA-256 on a fixed ring, so any two routers with the same geometry
  agree on every key, across router rebuilds, processes and restarts.
  A handful of assignments are additionally pinned as literals: if the
  ring construction ever changes, these fail loudly (a silent reshuffle
  would invalidate every shard-affine cache in the field).
* **Consistent rebalance** — growing N -> N+1 shards only moves keys
  onto the new shard; no key moves between surviving shards.
* **Shared result cache** — one front-door cache spans all shards and
  replicas; per-shard caches are disabled; tenants share entries
  (tenant is attribution, not content).
* **Admission quotas** — a tenant at its in-flight quota is shed with
  ServerOverloaded *before* admission; other tenants are unaffected.
* **Load shedding** — shard backpressure propagates as
  ServerOverloaded and accepted work still completes correctly.
* **Billing parity** (hypothesis property) — requests served through
  the cluster (hash routing + per-shard coalescing + split billing)
  bill identically to solo ``run_kernel`` execution: outputs exact,
  energy within rel=1e-12 (the repo's bit-identity bar for split
  billing, same as ``tests/test_serve.py``).
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import resolve_kernel, run_kernel
from repro.errors import ServeError, ServerOverloaded
from repro.serve import ServeRequest
from repro.serve.cluster import ClusterServer
from repro.serve.router import DEFAULT_VNODES, ShardRouter, route_key
from repro.serve.server import _default_run_batch


def run(coro):
    return asyncio.run(coro)


def adder_request(request_id, a, b, *, width=8, **kwargs):
    return ServeRequest(
        id=request_id,
        kernel="adder",
        width=width,
        operands={"a": tuple(a), "b": tuple(b)},
        **kwargs,
    )


# -- router ------------------------------------------------------------------


#: Keys with realistic shape: kernel-ish names, serving widths, hex-ish
#: digests.  The property only needs *some* distribution over keys.
route_keys = st.tuples(
    st.text(st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
            min_size=1, max_size=16),
    st.integers(min_value=1, max_value=63),
    st.text(st.sampled_from("0123456789abcdef"), min_size=4, max_size=16),
)


class TestShardRouter:
    @given(keys=st.lists(route_keys, min_size=1, max_size=32),
           shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_routing_is_stable_across_router_restarts(self, keys, shards):
        """Two independently built routers agree on every key — the
        restart-stability property the shared cache depends on."""
        first = ShardRouter(shards)
        second = ShardRouter(shards)
        for kernel, width, digest in keys:
            assert (first.shard_for(kernel, width, digest)
                    == second.shard_for(kernel, width, digest))
            assert 0 <= first.shard_for(kernel, width, digest) < shards

    def test_assignments_pinned_across_processes(self):
        """Literal pins: the SHA-256 ring is process-independent, so
        these exact assignments hold in every interpreter, forever.
        If the ring construction changes, update them *deliberately* —
        it is a cache- and batching-affinity reshuffle."""
        router = ShardRouter(4)
        assert router.shard_for("adder", 32, "aaaa") == 2
        assert router.shard_for("word-compare", 32, "aaaa") == 2
        assert router.shard_for("cam-match", 48, "bbbb") == 0
        assert router.shard_for("comparator", 2, "cccc") == 2
        # Kernel names case-fold into one batching identity.
        assert router.shard_for("ADDER", 32, "aaaa") == 2

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert router.shard_for("adder", 32, "aaaa") == 0
        assert router.pick("adder", 32, "aaaa") == (0, 0)

    @given(keys=st.lists(route_keys, min_size=1, max_size=64),
           shards=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_growing_the_ring_only_moves_keys_to_the_new_shard(
            self, keys, shards):
        """Consistency: N -> N+1 never reshuffles between survivors."""
        before = ShardRouter(shards)
        after = ShardRouter(shards + 1)
        for kernel, width, digest in keys:
            old = before.shard_for(kernel, width, digest)
            new = after.shard_for(kernel, width, digest)
            assert new == old or new == shards, (
                f"key moved between surviving shards {old} -> {new}")

    def test_replicas_round_robin_within_a_slot(self):
        router = ShardRouter(2, replicas=3)
        shard = router.shard_for("adder", 32, "aaaa")
        picks = [router.pick("adder", 32, "aaaa") for _ in range(6)]
        assert [p[0] for p in picks] == [shard] * 6
        assert [p[1] for p in picks] == [0, 1, 2, 0, 1, 2]

    def test_route_key_excludes_backend(self):
        """auto- and explicitly-routed twins must share one identity."""
        assert route_key("Adder", 32, "d1") == "adder|32|d1"

    def test_server_index_flattens_and_bounds(self):
        router = ShardRouter(3, replicas=2)
        assert router.servers == 6
        assert router.server_index(2, 1) == 5
        with pytest.raises(ServeError):
            router.server_index(3, 0)
        with pytest.raises(ServeError):
            router.server_index(0, 2)

    def test_geometry_validation(self):
        for bad in ({"shards": 0}, {"shards": 1, "replicas": 0},
                    {"shards": 1, "vnodes": 0}):
            with pytest.raises(ServeError):
                ShardRouter(bad.pop("shards"), **bad)
        assert ShardRouter(2).vnodes == DEFAULT_VNODES


# -- cluster behaviour -------------------------------------------------------


class TestClusterServing:
    def test_serves_across_shards_and_replicas(self):
        requests = [adder_request(f"r{i}", [i], [i + 1]) for i in range(12)]

        async def scenario():
            async with ClusterServer(shards=3, replicas=2,
                                     max_wait_us=0) as cluster:
                return await cluster.submit_many(requests), cluster.stats()

        results, stats = run(scenario())
        for i, result in enumerate(results):
            assert result.id == f"r{i}"
            assert result.outputs["sum"] == (2 * i + 1,)
        assert stats["servers"] == 6
        assert len(stats["shard_stats"]) == 6

    def test_shared_cache_spans_shards_and_tenants(self):
        async def scenario():
            async with ClusterServer(shards=3, replicas=2,
                                     max_wait_us=0) as cluster:
                first = await cluster.submit(
                    adder_request("first", [3], [4], tenant="tenant-a"))
                repeat = await cluster.submit(
                    adder_request("again", [3], [4], tenant="tenant-b"))
                return first, repeat, cluster.stats()

        first, repeat, stats = run(scenario())
        assert not first.cached
        assert repeat.cached
        assert repeat.id == "again"
        assert repeat.outputs == first.outputs
        # One entry, held at the front door — the per-shard caches are
        # disabled in favour of the shared one.
        assert stats["cache_entries"] == 1
        for shard in stats["shard_stats"]:
            assert shard["cache_entries"] == 0

    def test_auto_and_explicit_backend_share_one_cache_entry(self):
        """The ordering contract: auto resolves *before* the cache
        probe, so the resolved twin of an explicit request hits."""
        async def scenario():
            async with ClusterServer(shards=2, max_wait_us=0) as cluster:
                explicit = await cluster.submit(adder_request(
                    "explicit", [5], [6], backend="functional"))
                auto = await cluster.submit(adder_request(
                    "auto", [5], [6], backend="auto"))
                return explicit, auto

        explicit, auto = run(scenario())
        assert not explicit.cached
        assert auto.cached
        assert auto.outputs == explicit.outputs

    def test_quota_sheds_hot_tenant_before_admission(self):
        release = threading.Event()

        def gated_run_batch(request, operands, spec):
            release.wait(timeout=10)
            return _default_run_batch(request, operands, spec)

        async def scenario():
            async with ClusterServer(shards=1, quota=1, workers=1,
                                     max_wait_us=0,
                                     run_batch=gated_run_batch) as cluster:
                hot = asyncio.ensure_future(cluster.submit(adder_request(
                    "hot", [1], [2], tenant="tenant-hot")))
                # Wait until the hot tenant's request is admitted.
                for _ in range(200):
                    if cluster.stats()["tenants_inflight"].get("tenant-hot"):
                        break
                    await asyncio.sleep(0.005)
                assert cluster.stats()["tenants_inflight"] == {"tenant-hot": 1}

                with pytest.raises(ServerOverloaded, match="quota"):
                    await cluster.submit(adder_request(
                        "over", [3], [4], tenant="tenant-hot"))

                release.set()
                # The other tenant was never blocked by the hot one.
                cold = await cluster.submit(adder_request(
                    "cold", [5], [6], tenant="tenant-cold"))
                served = await hot
                # The shed slot frees on completion: the tenant can
                # come back.
                retry = await cluster.submit(adder_request(
                    "retry", [7], [8], tenant="tenant-hot"))
                return served, cold, retry

        served, cold, retry = run(scenario())
        assert served.outputs["sum"] == (3,)
        assert cold.outputs["sum"] == (11,)
        assert retry.outputs["sum"] == (15,)

    def test_shard_backpressure_propagates_and_loses_nothing(self):
        release = threading.Event()

        def gated_run_batch(request, operands, spec):
            release.wait(timeout=10)
            return _default_run_batch(request, operands, spec)

        burst = [adder_request(f"b{i}", [i], [i]) for i in range(16)]

        async def scenario():
            async with ClusterServer(shards=1, workers=1, max_batch_size=1,
                                     queue_limit=2, max_wait_us=0,
                                     cache_capacity=0,
                                     run_batch=gated_run_batch) as cluster:
                pending = [asyncio.ensure_future(cluster.submit(r))
                           for r in burst]
                await asyncio.sleep(0.05)  # let the queue fill and shed
                release.set()
                return await asyncio.gather(*pending,
                                            return_exceptions=True)

        outcomes = run(scenario())
        rejected = [o for o in outcomes if isinstance(o, ServerOverloaded)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        unexpected = [o for o in outcomes
                      if isinstance(o, BaseException)
                      and not isinstance(o, ServerOverloaded)]
        assert not unexpected, unexpected[:3]
        assert rejected, "queue_limit=2 under a 16-request burst must shed"
        for result in served:
            i = int(result.id[1:])
            assert result.outputs["sum"] == (2 * i,), (
                "an accepted request was lost or corrupted by shedding")

    def test_drain_closes_the_front_door(self):
        async def scenario():
            cluster = ClusterServer(shards=2, max_wait_us=0)
            async with cluster:
                await cluster.submit(adder_request("ok", [1], [1]))
            with pytest.raises(ServeError, match="draining"):
                await cluster.submit(adder_request("late", [1], [1]))
            stats = cluster.stats()
            assert stats["closed"] and stats["draining"]
            with pytest.raises(ServeError, match="closed"):
                async with cluster:
                    pass

        run(scenario())

    def test_constructor_validation(self):
        with pytest.raises(ServeError, match="quota"):
            ClusterServer(quota=0)
        with pytest.raises(ServeError, match="shards"):
            ClusterServer(shards=0)

    def test_describe_and_introspection(self):
        cluster = ClusterServer(shards=3, replicas=2, quota=8)
        assert cluster.shards == 3
        assert cluster.replicas == 2
        assert len(cluster.servers) == 6
        assert "quota=8" in cluster.describe()


# -- billing parity (satellite: cluster batching never changes bills) --------


word8 = st.integers(min_value=0, max_value=255)


class TestClusterBillingMatchesSolo:
    @given(
        batches=st.lists(
            st.tuples(
                st.sampled_from(["adder", "word-compare"]),
                st.lists(st.tuples(word8, word8), min_size=1, max_size=6),
            ),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_cluster_batched_billing_is_bit_identical_to_solo(self, batches):
        """Hash routing + coalescing + split billing never change what
        a request is billed — same property the single server pins in
        ``tests/test_serve.py``, through the full cluster path."""
        requests = [
            ServeRequest(
                id=f"r{i}", kernel=kernel, width=8,
                operands={"a": tuple(a for a, _ in pairs),
                          "b": tuple(b for _, b in pairs)},
            )
            for i, (kernel, pairs) in enumerate(batches)
        ]

        async def scenario():
            async with ClusterServer(shards=2, max_wait_us=100_000,
                                     cache_capacity=0) as cluster:
                return await cluster.submit_many(requests)

        served = run(scenario())
        for request, result in zip(requests, served):
            alone = run_kernel(
                resolve_kernel(request.kernel, request.width),
                {k: list(v) for k, v in request.operands.items()},
            )
            assert result.id == request.id
            assert result.words == alone.words
            for group in alone.word_outputs:
                assert result.outputs[group] == tuple(
                    int(w) for w in alone.word(group)), (
                    f"{request.kernel} outputs diverged through the cluster")
            assert result.energy == pytest.approx(alone.energy, rel=1e-12)
