"""Tests for the DSE sweep engine (:mod:`repro.analysis.dse`)."""

import csv
import io
import json

import pytest

from repro.analysis.dse import (
    SweepPoint,
    SweepResult,
    cim_dominates,
    clear_cache,
    evaluate_point,
    expand_grid,
    paper_grid,
    run_sweep,
    write_csv,
    write_jsonl,
)
from repro.errors import SpecError
from repro.obs.registry import get_registry
from repro.spec import TABLE1

SMALL_GRID = {
    "memristor.write_energy": [0.5e-15, 1e-15],
    "workloads.dna_hit_ratio": [0.5, 0.9],
}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


# -- grid expansion ---------------------------------------------------------


def test_expand_grid_order_is_deterministic():
    points = expand_grid(SMALL_GRID)
    assert len(points) == 4
    # Cartesian odometer: last axis varies fastest.
    assert points[0] == {
        "memristor.write_energy": 0.5e-15,
        "workloads.dna_hit_ratio": 0.5,
    }
    assert points[1]["workloads.dna_hit_ratio"] == 0.9
    assert points[2]["memristor.write_energy"] == 1e-15
    assert expand_grid(SMALL_GRID) == points


def test_expand_grid_empty_grid_is_single_base_point():
    assert expand_grid({}) == [{}]


def test_expand_grid_rejects_bad_values():
    with pytest.raises(SpecError):
        expand_grid({"memristor.write_energy": []})
    with pytest.raises(SpecError):
        expand_grid({"memristor.write_energy": 1e-15})


def test_paper_grid_has_128_points():
    assert len(expand_grid(paper_grid())) == 128


# -- single-point evaluation ------------------------------------------------


def test_evaluate_point_base_matches_table2():
    name, digest, metrics, ledgers = evaluate_point(TABLE1, {})
    assert digest == TABLE1.digest
    assert metrics["dna.improvement.energy_delay"] > 1.0
    assert metrics["math.improvement.energy_delay"] > 1.0
    assert set(ledgers) == {
        "dna.cim", "dna.conventional", "math.cim", "math.conventional",
    }
    for rows in ledgers.values():
        assert rows and all(row["provenance"] for row in rows)


def test_evaluate_point_coverage_metrics():
    _, _, metrics, _ = evaluate_point(
        TABLE1, {}, dna_coverages=(5, 40), keep_ledgers=False)
    assert "dna.coverage5.energy_advantage" in metrics
    assert "dna.coverage40.energy_advantage" in metrics


# -- sweeps -----------------------------------------------------------------


def test_run_sweep_serial_shape_and_provenance():
    result = run_sweep(SMALL_GRID, serial=True)
    assert isinstance(result, SweepResult)
    assert len(result) == 4
    assert result.evaluated == 4
    assert result.cache_hits == 0
    assert not result.parallel
    assert result.base_digest == TABLE1.digest
    digests = {p.spec_digest for p in result.points}
    assert len(digests) == 4
    for point in result.points:
        assert point.metrics["math.improvement.energy_delay"] > 0
        assert point.ledgers
        assert cim_dominates(point, "math")


def test_run_sweep_cache_hits_on_rerun():
    first = run_sweep(SMALL_GRID, serial=True)
    second = run_sweep(SMALL_GRID, serial=True)
    assert second.evaluated == 0
    assert second.cache_hits == 4
    assert all(p.cached for p in second.points)
    for a, b in zip(first.points, second.points):
        assert a.metrics == b.metrics


def test_run_sweep_dedups_duplicate_grid_points():
    grid = {"memristor.write_energy": [1e-15, 1e-15]}
    result = run_sweep(grid, serial=True)
    assert len(result) == 2
    assert result.evaluated == 1
    assert result.cache_hits == 1
    assert result.points[0].metrics == result.points[1].metrics


def test_run_sweep_counters_increment():
    registry = get_registry()
    points = registry.counter("dse_points_total")
    hits = registry.counter("dse_cache_hits_total")
    points_before, hits_before = points.value, hits.value
    run_sweep(SMALL_GRID, serial=True)
    run_sweep(SMALL_GRID, serial=True)
    assert points.value == points_before + 8
    assert hits.value == hits_before + 4


def test_run_sweep_parallel_matches_serial():
    serial = run_sweep(SMALL_GRID, serial=True)
    clear_cache()
    parallel = run_sweep(SMALL_GRID, workers=2, use_cache=False)
    assert parallel.parallel
    assert len(parallel) == len(serial)
    for a, b in zip(serial.points, parallel.points):
        assert a.spec_digest == b.spec_digest
        assert a.metrics == b.metrics


def test_run_sweep_best():
    result = run_sweep(SMALL_GRID, serial=True)
    key = "math.improvement.energy_delay"
    best = result.best(key)
    assert best.metrics[key] == max(result.metric_column(key))
    worst = result.best(key, maximize=False)
    assert worst.metrics[key] == min(result.metric_column(key))


def test_best_breaks_ties_on_lowest_index():
    """Regression: with duplicate metric values, best() must pick the
    lowest point index deterministically in both directions (it used to
    depend on max()/min() first-wins behaviour over whatever order the
    pool returned points in)."""

    def point(index, value):
        return SweepPoint(index=index, overrides={}, spec_name="t",
                          spec_digest=f"d{index}", metrics={"m": value})

    result = SweepResult(base_digest="b", evaluated=4, cache_hits=0,
                         parallel=False, workers=1,
                         points=[point(0, 1.0), point(1, 3.0),
                                 point(2, 3.0), point(3, 1.0)])
    assert result.best("m").index == 1            # 3.0 tie -> index 1, not 2
    assert result.best("m", maximize=False).index == 0  # 1.0 tie -> index 0
    reversed_result = SweepResult(
        base_digest="b", evaluated=4, cache_hits=0, parallel=False,
        workers=1, points=list(reversed(result.points)))
    assert reversed_result.best("m").index == 1   # stable under reordering
    assert reversed_result.best("m", maximize=False).index == 0


def test_sweep_points_carry_plan_metrics():
    """Every evaluated point also reports the offload plan's verdict."""
    _, _, metrics, _ = evaluate_point(TABLE1, {})
    assert metrics["plan.adder.cim_wins"] == 1.0
    assert metrics["plan.comparator.cim_energy_delay"] > 0
    assert metrics["plan.comparator.cpu_energy_delay"] > 0
    assert metrics["plan.adder.crossover_words"] == 1.0


# -- serialisation ----------------------------------------------------------


def test_write_jsonl_round_trip():
    result = run_sweep(SMALL_GRID, serial=True)
    stream = io.StringIO()
    lines = write_jsonl(result, stream)
    assert lines == 5  # header + 4 points
    rows = [json.loads(line) for line in stream.getvalue().splitlines()]
    header = rows[0]["sweep"]
    assert header["points"] == 4
    assert header["base_digest"] == TABLE1.digest
    for row, point in zip(rows[1:], result.points):
        assert row["spec_digest"] == point.spec_digest
        assert row["metrics"] == point.metrics
        assert row["ledgers"]["math.cim"][0]["provenance"]


def test_write_csv_shape():
    result = run_sweep(SMALL_GRID, serial=True)
    stream = io.StringIO()
    write_csv(result, stream)
    rows = list(csv.reader(io.StringIO(stream.getvalue())))
    header, body = rows[0], rows[1:]
    assert len(body) == 4
    assert header[0] == "index"
    assert "memristor.write_energy" in header
    assert "math.improvement.energy_delay" in header
    assert [row[0] for row in body] == ["0", "1", "2", "3"]
