"""Tests for the netlist compiler and register allocator."""

from itertools import product

import pytest

from repro.compiler import (
    OP_ARITY,
    OP_PULSES,
    LogicNetwork,
    allocation_report,
    compilation_report,
    compile_network,
    random_network,
    reuse_registers,
)
from repro.errors import SynthesisError
from repro.logic import ImplyMachine


def full_adder_network():
    net = LogicNetwork("fa")
    a, b, c = net.input("a"), net.input("b"), net.input("cin")
    x = net.gate("XOR", a, b)
    s = net.gate("XOR", x, c, name="sum")
    g = net.gate("AND", a, b)
    p = net.gate("AND", x, c)
    net.gate("OR", g, p, name="cout")
    net.output("sum")
    net.output("cout")
    return net


class TestNetworkConstruction:
    def test_builder(self):
        net = LogicNetwork()
        a = net.input("a")
        out = net.gate("NOT", a)
        net.output(out)
        assert net.gate_count == 1
        assert net.depth() == 1

    def test_depth(self):
        # sum sits at level 2; cout = OR(AND, AND(XOR)) at level 3.
        net = full_adder_network()
        assert net.depth() == 3

    def test_duplicate_signal_rejected(self):
        net = LogicNetwork()
        net.input("a")
        with pytest.raises(SynthesisError):
            net.input("a")

    def test_unknown_operand_rejected(self):
        net = LogicNetwork()
        with pytest.raises(SynthesisError):
            net.gate("NOT", "ghost")

    def test_unknown_op_rejected(self):
        net = LogicNetwork()
        net.input("a")
        with pytest.raises(SynthesisError):
            net.gate("MAJ", "a")

    def test_arity_checked(self):
        net = LogicNetwork()
        a = net.input("a")
        with pytest.raises(SynthesisError):
            net.gate("AND", a)

    def test_duplicate_output_rejected(self):
        net = LogicNetwork()
        a = net.input("a")
        out = net.gate("NOT", a)
        net.output(out)
        with pytest.raises(SynthesisError):
            net.output(out)

    def test_validate_requires_outputs(self):
        net = LogicNetwork()
        net.input("a")
        with pytest.raises(SynthesisError):
            net.validate()


class TestEvaluation:
    def test_full_adder_semantics(self):
        net = full_adder_network()
        for a, b, c in product((0, 1), repeat=3):
            out = net.evaluate({"a": a, "b": b, "cin": c})
            total = a + b + c
            assert out["sum"] == total & 1
            assert out["cout"] == total >> 1

    def test_missing_input_rejected(self):
        net = full_adder_network()
        with pytest.raises(SynthesisError):
            net.evaluate({"a": 1})

    def test_truth_table(self):
        net = LogicNetwork()
        a, b = net.input("a"), net.input("b")
        net.output(net.gate("AND", a, b))
        table = net.truth_table()
        assert len(table) == 4


class TestCompilation:
    def test_full_adder_compiles_correctly(self):
        net = full_adder_network()
        prog = compile_network(net)
        for a, b, c in product((0, 1), repeat=3):
            assignment = {"a": a, "b": b, "cin": c}
            assert prog.run_functional(assignment) == net.evaluate(assignment)

    @pytest.mark.parametrize("op", sorted(OP_ARITY))
    def test_single_gate_networks(self, op):
        net = LogicNetwork(op.lower())
        args = [net.input(f"x{i}") for i in range(OP_ARITY[op])]
        net.output(net.gate(op, *args))
        prog = compile_network(net)
        for bits in product((0, 1), repeat=len(args)):
            assignment = dict(zip([f"x{i}" for i in range(len(args))], bits))
            assert prog.run_functional(assignment) == net.evaluate(assignment)

    @pytest.mark.parametrize("op", sorted(OP_PULSES))
    def test_pulse_costs_match_contract(self, op):
        net = LogicNetwork()
        args = [net.input(f"x{i}") for i in range(OP_ARITY[op])]
        net.output(net.gate(op, *args))
        prog = compile_network(net)
        assert prog.compute_step_count == OP_PULSES[op], op

    def test_fanout_does_not_corrupt_operands(self):
        """One signal feeding many gates: operand registers must be
        preserved across all uses (the non-destructive lowering)."""
        net = LogicNetwork()
        a, b = net.input("a"), net.input("b")
        x = net.gate("XOR", a, b)
        net.output(net.gate("AND", x, a, name="o1"))
        net.output(net.gate("OR", x, b, name="o2"))
        net.output(net.gate("XOR", x, x, name="o3"))
        prog = compile_network(net)
        for bits in product((0, 1), repeat=2):
            assignment = dict(zip(["a", "b"], bits))
            assert prog.run_functional(assignment) == net.evaluate(assignment)

    def test_electrical_execution(self):
        net = full_adder_network()
        prog = compile_network(net)
        machine = ImplyMachine()
        machine.run_and_check(prog, {"a": 1, "b": 1, "cin": 1})

    def test_report(self):
        report = compilation_report(full_adder_network())
        assert report.gates == 5
        assert report.pulses > 0
        assert report.pulses_per_gate > 0
        assert set(report.pulses_by_op) == {"XOR", "AND", "OR"}

    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks_compile_correctly(self, seed):
        net = random_network(inputs=3, gates=10, outputs=2, seed=seed)
        prog = compile_network(net)
        for pattern in range(8):
            assignment = {
                s: (pattern >> i) & 1 for i, s in enumerate(net.inputs)
            }
            assert prog.run_functional(assignment) == net.evaluate(assignment)

    def test_random_network_validation(self):
        with pytest.raises(SynthesisError):
            random_network(inputs=0)
        with pytest.raises(SynthesisError):
            random_network(gates=2, outputs=5)


class TestRegisterReuse:
    def test_behaviour_preserved_exhaustively(self):
        net = full_adder_network()
        prog = compile_network(net)
        compact = reuse_registers(prog)
        for a, b, c in product((0, 1), repeat=3):
            assignment = {"a": a, "b": b, "cin": c}
            assert compact.run_functional(assignment) == net.evaluate(assignment)

    def test_registers_reduced(self):
        prog = compile_network(full_adder_network())
        compact = reuse_registers(prog)
        assert compact.device_count < prog.device_count

    def test_pulse_count_unchanged(self):
        prog = compile_network(full_adder_network())
        assert reuse_registers(prog).step_count == prog.step_count

    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks_survive_reuse(self, seed):
        net = random_network(inputs=4, gates=12, outputs=3, seed=seed)
        prog = compile_network(net)
        compact = reuse_registers(prog)
        assert compact.device_count <= prog.device_count
        for pattern in range(16):
            assignment = {
                s: (pattern >> i) & 1 for i, s in enumerate(net.inputs)
            }
            assert compact.run_functional(assignment) == net.evaluate(assignment)

    def test_compact_program_runs_electrically(self):
        prog = compile_network(full_adder_network())
        compact = reuse_registers(prog)
        machine = ImplyMachine()
        machine.run_and_check(compact, {"a": 1, "b": 0, "cin": 1})

    def test_allocation_report(self):
        prog = compile_network(full_adder_network())
        report = allocation_report(prog)
        assert report.saved > 0
        assert 0 < report.reduction < 1
        assert report.registers_after < report.registers_before

    def test_inputs_keep_distinct_registers(self):
        """Input registers are all live from the start; reuse must not
        merge them."""
        net = LogicNetwork()
        a, b, c = net.input("a"), net.input("b"), net.input("c")
        x = net.gate("AND", a, b)
        net.output(net.gate("AND", x, c))
        compact = reuse_registers(compile_network(net))
        load_targets = [
            ins.operands[0] for ins in compact.instructions
            if ins.kind.name == "LOAD"
        ]
        assert len(set(load_targets)) == 3
