"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Summary,
    get_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("pulses_total")
        assert c.value == 0
        c.inc()
        c.inc(41)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        c = Counter("pulses_total")
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_reset(self):
        c = Counter("pulses_total")
        c.inc(5)
        c.reset()
        assert c.value == 0

    def test_invalid_name_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter("bad name!")
        with pytest.raises(ObservabilityError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10.0)
        g.inc(2.5)
        g.dec()
        assert g.value == pytest.approx(11.5)

    def test_reset(self):
        g = Gauge("depth")
        g.set(-3)
        g.reset()
        assert g.value == 0


class TestHistogram:
    def test_observe_and_stats(self):
        h = Histogram("lat", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)
        assert h.minimum == 0.5
        assert h.maximum == 500.0

    def test_bucket_counts_are_cumulative_le(self):
        h = Histogram("lat", buckets=(1.0, 10.0))
        for v in (1.0, 2.0, 10.0, 11.0):  # bound-equal values land inside
            h.observe(v)
        assert h.bucket_counts() == [(1.0, 1), (10.0, 3), (float("inf"), 4)]

    def test_empty_histogram(self):
        h = Histogram("lat")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.minimum is None and h.maximum is None
        assert h.buckets == DEFAULT_BUCKETS

    def test_bad_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("lat", buckets=())
        with pytest.raises(ObservabilityError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram("lat", buckets=(2.0, 1.0))

    def test_reset(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        h.reset()
        assert h.count == 0
        assert h.bucket_counts() == [(1.0, 0), (float("inf"), 0)]


class TestSummary:
    def test_tracks_default_quantiles(self):
        s = Summary("lat")
        assert s.quantile_targets == DEFAULT_QUANTILES
        for i in range(1, 101):
            s.observe(i / 100.0)
        assert s.count == 100
        assert s.sum == pytest.approx(50.5)
        assert s.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert s.quantile(0.99) == pytest.approx(0.99, abs=0.05)

    def test_custom_quantiles(self):
        s = Summary("lat", quantiles=(0.25, 0.75))
        s.observe(1.0)
        assert set(s.quantiles()) == {0.25, 0.75}
        with pytest.raises(ObservabilityError):
            s.quantile(0.5)  # untracked target

    def test_bad_quantiles_rejected(self):
        with pytest.raises(ObservabilityError):
            Summary("lat", quantiles=())
        with pytest.raises(ObservabilityError):
            Summary("lat", quantiles=(0.9, 0.5))
        with pytest.raises(ObservabilityError):
            Summary("lat", quantiles=(0.0, 0.5))

    def test_empty_summary(self):
        s = Summary("lat")
        assert s.count == 0
        assert s.quantile(0.5) is None
        assert s.minimum is None and s.maximum is None

    def test_bookkeeping(self):
        s = Summary("lat")
        for v in (3.0, 1.0, 2.0):
            s.observe(v)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.mean == pytest.approx(2.0)

    def test_reset(self):
        s = Summary("lat")
        s.observe(5.0)
        s.reset()
        assert s.count == 0 and s.quantile(0.5) is None

    def test_labelled_children(self):
        s = Summary("lat")
        s.labels(kernel="adder").observe(0.5)
        s.labels(kernel="adder").observe(1.5)
        assert s.labels(kernel="adder").count == 2
        assert s.labels(kernel="adder").quantile(0.5) == pytest.approx(1.0)


class TestLabels:
    def test_same_labels_same_child(self):
        c = Counter("ops_total")
        a = c.labels(op="IMP")
        b = c.labels(op="IMP")
        assert a is b
        a.inc(3)
        assert b.value == 3

    def test_distinct_labels_distinct_children(self):
        c = Counter("ops_total")
        c.labels(op="IMP").inc()
        c.labels(op="FALSE").inc(2)
        assert [child.value for child in c.children()] == [2, 1]  # sorted

    def test_label_order_is_irrelevant(self):
        c = Counter("ops_total")
        assert c.labels(a="1", b="2") is c.labels(b="2", a="1")

    def test_labels_on_child_rejected(self):
        c = Counter("ops_total")
        with pytest.raises(ObservabilityError):
            c.labels(op="IMP").labels(op="nested")

    def test_empty_labels_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter("ops_total").labels()

    def test_parent_reset_resets_children(self):
        c = Counter("ops_total")
        c.labels(op="IMP").inc(7)
        c.reset()
        assert c.labels(op="IMP").value == 0


class TestRegistry:
    def test_idempotent_registration(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "help text")
        b = reg.counter("x_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")

    def test_reset_keeps_registrations(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(9)
        reg.reset()
        assert reg.counter("x") is c
        assert c.value == 0

    def test_iteration_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        assert [m.name for m in reg] == ["aa", "zz"]

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc(2)
        reg.gauge("g").set(1.5)
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        reg.counter("lab").labels(op="X").inc()
        snap = reg.snapshot()
        assert snap["c"] == {"kind": "counter", "help": "a counter", "value": 2}
        assert snap["g"]["value"] == 1.5
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"] == [[1.0, 1], [float("inf"), 1]]
        assert snap["lab"]["children"][0]["labels"] == {"op": "X"}

    def test_summary_registration(self):
        reg = MetricsRegistry()
        s = reg.summary("lat", "latency", quantiles=(0.5, 0.9))
        assert reg.summary("lat") is s
        with pytest.raises(ObservabilityError):
            reg.counter("lat")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0))
        assert reg.histogram("h") is reg.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            reg.histogram("h", buckets=(1.0, 3.0))

    def test_summary_quantile_conflict_raises(self):
        reg = MetricsRegistry()
        reg.summary("s", quantiles=(0.5,))
        with pytest.raises(ObservabilityError):
            reg.summary("s", quantiles=(0.5, 0.9))

    def test_latency_buckets_are_microsecond_scale(self):
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert LATENCY_BUCKETS[-1] == pytest.approx(10.0)
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()
        # The instrumented modules registered their hot-path metrics.
        assert get_registry().get("imply_pulses_total") is not None


class TestThreadSafety:
    """ISSUE 6 satellite: no lost updates under concurrent mutation."""

    THREADS = 8
    ROUNDS = 2000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.THREADS)

        def body():
            barrier.wait()
            for _ in range(self.ROUNDS):
                fn()

        threads = [threading.Thread(target=body) for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def test_counter_increments_not_lost(self):
        c = Counter("stress_total")
        self._hammer(lambda: c.inc())
        assert c.value == self.THREADS * self.ROUNDS

    def test_gauge_increments_not_lost(self):
        g = Gauge("stress_gauge")
        self._hammer(lambda: g.inc(1.0))
        assert g.value == pytest.approx(self.THREADS * self.ROUNDS)

    def test_histogram_observations_not_lost(self):
        h = Histogram("stress_hist", buckets=(0.5, 1.5))
        self._hammer(lambda: h.observe(1.0))
        total = self.THREADS * self.ROUNDS
        assert h.count == total
        assert h.sum == pytest.approx(total)
        assert h.bucket_counts() == [
            (0.5, 0), (1.5, total), (float("inf"), total)]

    def test_summary_observations_not_lost(self):
        s = Summary("stress_summary")
        self._hammer(lambda: s.observe(1.0))
        assert s.count == self.THREADS * self.ROUNDS
        assert s.quantile(0.5) == pytest.approx(1.0)

    def test_concurrent_label_creation_yields_one_child(self):
        c = Counter("stress_labels_total")
        self._hammer(lambda: c.labels(op="IMP").inc())
        assert len(c.children()) == 1
        assert c.labels(op="IMP").value == self.THREADS * self.ROUNDS
