"""Tests for the IMPLY program representation."""

import pytest

from repro.errors import LogicError
from repro.logic import ImplyProgram, Instruction, OpKind


class TestInstruction:
    def test_false_takes_one_operand(self):
        ins = Instruction(OpKind.FALSE, ("a",))
        assert ins.operands == ("a",)

    def test_imp_takes_two_distinct(self):
        Instruction(OpKind.IMP, ("a", "b"))
        with pytest.raises(LogicError):
            Instruction(OpKind.IMP, ("a", "a"))

    def test_operand_arity_enforced(self):
        with pytest.raises(LogicError):
            Instruction(OpKind.FALSE, ("a", "b"))
        with pytest.raises(LogicError):
            Instruction(OpKind.IMP, ("a",))

    def test_load_requires_source(self):
        with pytest.raises(LogicError):
            Instruction(OpKind.LOAD, ("a",))
        Instruction(OpKind.LOAD, ("a",), source="x")


class TestBuilders:
    def test_chaining(self):
        prog = ImplyProgram("T", inputs=["x"], outputs={"out": "s"})
        returned = prog.load("a", "x").false("s").imp("a", "s")
        assert returned is prog
        assert prog.step_count == 3

    def test_extend_with_rename(self):
        inner = ImplyProgram("G")
        inner.false("s").imp("a", "s")
        outer = ImplyProgram("O")
        outer.false("a")
        outer.extend(inner, rename={"s": "t", "a": "a"})
        ops = [(i.kind, i.operands) for i in outer.instructions]
        assert ops == [
            (OpKind.FALSE, ("a",)),
            (OpKind.FALSE, ("t",)),
            (OpKind.IMP, ("a", "t")),
        ]


class TestStaticAnalysis:
    def test_step_counts(self):
        prog = ImplyProgram("T", inputs=["x", "y"])
        prog.load("a", "x").load("b", "y").false("s").imp("a", "s")
        assert prog.step_count == 4
        assert prog.compute_step_count == 2

    def test_registers_in_first_use_order(self):
        prog = ImplyProgram("T")
        prog.false("b").false("a").imp("b", "a")
        assert prog.registers == ["b", "a"]

    def test_device_count(self):
        prog = ImplyProgram("T")
        prog.false("a").false("b").false("c").imp("a", "b")
        assert prog.device_count == 3

    def test_validate_catches_undeclared_input(self):
        prog = ImplyProgram("T", inputs=["x"])
        prog.load("a", "nope")
        with pytest.raises(LogicError):
            prog.validate()

    def test_validate_catches_use_before_write(self):
        prog = ImplyProgram("T")
        prog.false("a").imp("a", "b")   # b never initialised
        with pytest.raises(LogicError):
            prog.validate()

    def test_validate_catches_dangling_output(self):
        prog = ImplyProgram("T", outputs={"out": "ghost"})
        prog.false("a")
        with pytest.raises(LogicError):
            prog.validate()

    def test_valid_program_passes(self):
        prog = ImplyProgram("T", inputs=["x"], outputs={"out": "s"})
        prog.load("a", "x").false("s").imp("a", "s")
        prog.validate()


class TestFunctionalExecution:
    def test_not_semantics(self):
        prog = ImplyProgram("NOT", inputs=["x"], outputs={"out": "s"})
        prog.load("a", "x").false("s").imp("a", "s")
        assert prog.run_functional({"x": 0})["out"] == 1
        assert prog.run_functional({"x": 1})["out"] == 0

    def test_missing_input_rejected(self):
        prog = ImplyProgram("T", inputs=["x"], outputs={"out": "a"})
        prog.load("a", "x")
        with pytest.raises(LogicError):
            prog.run_functional({})

    def test_non_bit_input_rejected(self):
        prog = ImplyProgram("T", inputs=["x"], outputs={"out": "a"})
        prog.load("a", "x")
        with pytest.raises(LogicError):
            prog.run_functional({"x": 3})

    def test_imp_on_uninitialised_register_rejected(self):
        prog = ImplyProgram("T", inputs=[], outputs={})
        prog.instructions.append(Instruction(OpKind.IMP, ("a", "b")))
        with pytest.raises(LogicError):
            prog.run_functional({})

    def test_truth_table_enumeration(self):
        prog = ImplyProgram("OR", inputs=["a", "b"], outputs={"out": "b"})
        prog.load("a", "a").load("b", "b")
        prog.false("s").imp("a", "s").imp("s", "b")
        table = prog.truth_table()
        assert len(table) == 4
        got = {tuple(sorted(i.items())): o["out"] for i, o in table}
        for a in (0, 1):
            for b in (0, 1):
                assert got[tuple(sorted({"a": a, "b": b}.items()))] == (a | b)
