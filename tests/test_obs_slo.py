"""SLO declarations and error-budget burn (ISSUE 6 tentpole, part 5)."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import SLO, SLOTracker


class TestSLOValidation:
    def test_needs_a_name_and_at_least_one_objective(self):
        with pytest.raises(ObservabilityError):
            SLO(name="")
        with pytest.raises(ObservabilityError):
            SLO(name="empty")  # neither latency nor error objective

    def test_latency_target_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            SLO(name="x", latency_target_s=0.0)

    def test_objectives_strictly_inside_unit_interval(self):
        with pytest.raises(ObservabilityError):
            SLO(name="x", latency_target_s=1.0, latency_objective=1.0)
        with pytest.raises(ObservabilityError):
            SLO(name="x", error_rate_objective=0.0)


class TestLatencyBudget:
    def test_burn_math(self):
        # p90 under 1ms over 100 requests allows 10 breaches.
        slo = SLO(name="p90", latency_target_s=1e-3, latency_objective=0.9)
        tracker = SLOTracker(slo)
        for i in range(100):
            tracker.record(2e-3 if i < 5 else 1e-4)
        assert tracker.total == 100
        assert tracker.latency_breaches == 5
        assert tracker.latency_burn() == pytest.approx(0.5)
        assert tracker.met()

    def test_blown_budget(self):
        slo = SLO(name="p90", latency_target_s=1e-3, latency_objective=0.9)
        tracker = SLOTracker(slo)
        for i in range(100):
            tracker.record(2e-3 if i < 20 else 1e-4)
        assert tracker.latency_burn() == pytest.approx(2.0)
        assert not tracker.met()

    def test_no_traffic_is_unburnt(self):
        tracker = SLOTracker(SLO(name="idle", latency_target_s=1e-3))
        assert tracker.latency_burn() == 0.0
        assert tracker.met()

    def test_live_quantile_estimate(self):
        slo = SLO(name="p99", latency_target_s=1.0, latency_objective=0.99)
        tracker = SLOTracker(slo)
        for i in range(1000):
            tracker.record(i / 1000.0)
        assert tracker.latency_quantile() == pytest.approx(0.99, abs=0.02)

    def test_median_objective_supported(self):
        # objective <= 0.5 must not break the digest's target ordering
        tracker = SLOTracker(
            SLO(name="p50", latency_target_s=1.0, latency_objective=0.5))
        tracker.record(0.1)
        assert tracker.latency_quantile() == pytest.approx(0.1)


class TestErrorBudget:
    def test_burn_math(self):
        slo = SLO(name="errors", error_rate_objective=0.95)
        tracker = SLOTracker(slo)
        for i in range(100):
            tracker.record(1e-4, ok=(i % 50 != 0))  # 2 failures
        assert tracker.errors == 2
        assert tracker.error_burn() == pytest.approx(0.4)
        assert tracker.met()

    def test_failures_do_not_feed_latency(self):
        slo = SLO(name="both", latency_target_s=1e-3,
                  latency_objective=0.9, error_rate_objective=0.9)
        tracker = SLOTracker(slo)
        tracker.record(1e-4, ok=True)
        tracker.record(5.0, ok=False)  # slow failure: error budget only
        assert tracker.latency_breaches == 0
        assert tracker.errors == 1
        assert tracker.latency_quantile() == pytest.approx(1e-4)


class TestReporting:
    def test_report_payload(self):
        slo = SLO(name="serve-p99", latency_target_s=1e-2,
                  latency_objective=0.99, error_rate_objective=0.999)
        tracker = SLOTracker(slo)
        for _ in range(10):
            tracker.record(1e-3)
        report = tracker.report()
        assert report["slo"] == "serve-p99"
        assert report["total"] == 10
        assert report["met"] is True
        assert report["latency_burn"] == 0.0
        assert report["error_burn"] == 0.0
        assert report["latency_quantile_s"] == pytest.approx(1e-3)

    def test_describe_is_one_line(self):
        tracker = SLOTracker(SLO(name="x", latency_target_s=1e-3))
        tracker.record(1e-4)
        line = tracker.describe()
        assert "\n" not in line
        assert "slo x" in line and "MET" in line
