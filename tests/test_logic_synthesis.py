"""Tests for boolean synthesis into IMPLY programs."""

import itertools

import pytest

from repro.errors import SynthesisError
from repro.logic import ImplyMachine, synthesise, truth_table_of, verify_program


class TestTruthTableOf:
    def test_xor_table(self):
        table = truth_table_of(lambda a, b: a ^ b, 2)
        assert table == [0, 1, 1, 0]

    def test_little_endian_pattern_order(self):
        # pattern k assigns bit i of k to input i.
        table = truth_table_of(lambda a, b: a, 2)
        assert table == [0, 1, 0, 1]

    def test_rejects_non_bit_return(self):
        with pytest.raises(SynthesisError):
            truth_table_of(lambda a: 2, 1)

    def test_rejects_zero_arity(self):
        with pytest.raises(SynthesisError):
            truth_table_of(lambda: 1, 0)


class TestSynthesise:
    @pytest.mark.parametrize("fn,arity,label", [
        (lambda a: a, 1, "identity"),
        (lambda a: 1 - a, 1, "not"),
        (lambda a, b: a & b, 2, "and"),
        (lambda a, b: a | b, 2, "or"),
        (lambda a, b: a ^ b, 2, "xor"),
        (lambda a, b: a & (1 - b), 2, "andnot"),
        (lambda a, b, c: (a & b) | c, 3, "ab+c"),
        (lambda a, b, c: 1 if a + b + c >= 2 else 0, 3, "majority"),
        (lambda a, b, c: a ^ b ^ c, 3, "parity"),
        (lambda a, b, c, d: int(a == b and c == d), 4, "pair-eq"),
    ])
    def test_functions_verify(self, fn, arity, label):
        program = synthesise(fn, arity, name=label.upper())
        verify_program(program, fn)

    def test_constant_zero(self):
        program = synthesise(lambda a, b: 0, 2)
        verify_program(program, lambda a, b: 0)

    def test_constant_one(self):
        program = synthesise(lambda a, b: 1, 2)
        verify_program(program, lambda a, b: 1)

    def test_custom_input_names(self):
        program = synthesise(lambda a, b: a & b, 2, input_names=["left", "right"])
        assert program.inputs == ["left", "right"]
        out = program.run_functional({"left": 1, "right": 1})
        assert out["out"] == 1

    def test_input_name_count_checked(self):
        with pytest.raises(SynthesisError):
            synthesise(lambda a, b: a, 2, input_names=["only_one"])

    def test_synthesised_programs_validate(self):
        synthesise(lambda a, b, c: a ^ b ^ c, 3).validate()

    def test_electrical_execution_of_synthesised_program(self):
        program = synthesise(lambda a, b: a ^ b, 2, name="SYNTH-XOR")
        for bits in itertools.product((0, 1), repeat=2):
            machine = ImplyMachine()
            machine.run_and_check(program, dict(zip(program.inputs, bits)))

    def test_hand_xor_beats_synthesised(self):
        """The hand-optimised XOR recipe must not be worse than the
        generic sum-of-products compiler output."""
        from repro.logic import build_gate

        hand = build_gate("XOR").compute_step_count
        generic = synthesise(lambda a, b: a ^ b, 2).compute_step_count
        assert hand <= generic


class TestVerifyProgram:
    def test_detects_wrong_program(self):
        program = synthesise(lambda a, b: a & b, 2)
        with pytest.raises(SynthesisError):
            verify_program(program, lambda a, b: a | b)
