"""Unit tests for :mod:`repro.spec` — the TechSpec tree and CostLedger."""

import pytest

from repro.errors import SpecError
from repro.spec import (
    CostEntry,
    CostLedger,
    Quantity,
    TABLE1,
    TechSpec,
)


# -- TechSpec ---------------------------------------------------------------


def test_flat_covers_every_leaf():
    flat = TABLE1.flat()
    assert flat["memristor.write_energy"] == 1e-15
    assert flat["cmos.gate_delay"] == TABLE1.cmos.gate_delay
    assert flat["workloads.math_additions"] == 10 ** 6
    # Every flat path round-trips through derive as an identity (the
    # auto-generated "+Nov" name suffix is part of the digest, so pin it).
    same = TABLE1.derive(dict(flat), name=TABLE1.name)
    assert same.digest == TABLE1.digest


def test_derive_rejects_unknown_paths():
    with pytest.raises(SpecError, match="unknown spec parameter"):
        TABLE1.derive({"memristor.write_speed": 1.0})
    with pytest.raises(SpecError, match="unknown spec parameter"):
        TABLE1.derive({"nonsense.write_energy": 1.0})
    with pytest.raises(SpecError, match="unknown spec parameter"):
        TABLE1.derive({"memristor": 1.0})


def test_derive_validates_through_node_constructors():
    with pytest.raises(Exception):
        TABLE1.derive({"memristor.write_energy": -1.0})
    with pytest.raises(Exception):
        TABLE1.derive({"workloads.dna_hit_ratio": 1.5})
    with pytest.raises(SpecError):
        TABLE1.derive({"comparator.steps": 0})


def test_derive_names_and_renames():
    derived = TABLE1.derive({"memristor.write_energy": 2e-15})
    assert derived.name == "table1+1ov"
    named = TABLE1.derive({"memristor.write_energy": 2e-15}, name="fat-write")
    assert named.name == "fat-write"
    # Name participates in the digest (it is part of the canonical form).
    assert named.digest != derived.digest


def test_from_dict_rejects_unknown_fields():
    data = TABLE1.to_dict()
    data["gremlins"] = {"count": 3}
    with pytest.raises(SpecError, match="unknown TechSpec field"):
        TechSpec.from_dict(data)


def test_digest_is_value_identity():
    a = TechSpec()
    b = TechSpec()
    assert a is not b
    assert a.digest == b.digest == TABLE1.digest


def test_cache_for_unknown_application():
    with pytest.raises(SpecError, match="unknown application"):
        TABLE1.cache_for("weather")


def test_describe_mentions_name_and_digest():
    text = TABLE1.describe()
    assert "table1" in text
    assert TABLE1.short_digest in text


# -- CostLedger -------------------------------------------------------------


def test_entry_validation():
    with pytest.raises(SpecError):
        CostEntry("", Quantity.ENERGY, 1.0)
    with pytest.raises(SpecError):
        CostEntry("dynamic", Quantity.ENERGY, float("nan"))
    with pytest.raises(SpecError):
        CostEntry("dynamic", Quantity.ENERGY, -1.0)
    with pytest.raises(SpecError):
        CostEntry("dynamic", "energy", 1.0)


def test_totals_are_insertion_ordered():
    values = [0.1, 0.2, 0.7, 1e-20]
    ledger = CostLedger()
    for index, value in enumerate(values):
        ledger.energy(f"part{index}", value)
    expected = 0.0
    for value in values:
        expected += value
    assert ledger.total(Quantity.ENERGY) == expected


def test_quantities_do_not_mix():
    ledger = CostLedger()
    ledger.energy("dynamic", 2.0, "ops x unit energy")
    ledger.latency("rounds", 3.0)
    ledger.area("crossbar", 4.0)
    assert ledger.total(Quantity.ENERGY) == 2.0
    assert ledger.total(Quantity.LATENCY) == 3.0
    assert ledger.total(Quantity.AREA) == 4.0
    assert len(ledger.select(Quantity.ENERGY)) == 1
    assert ledger.breakdown(Quantity.ENERGY) == {"dynamic": 2.0}


def test_merge_prefix_and_add():
    a = CostLedger()
    a.energy("dynamic", 1.0)
    b = CostLedger()
    b.energy("dynamic", 2.0)
    combined = a + b
    assert combined.total(Quantity.ENERGY) == 3.0
    assert len(a) == 1 and len(b) == 1  # operands untouched
    prefixed = CostLedger().merge(b, prefix="cim/")
    assert prefixed.entries[0].component == "cim/dynamic"


def test_rows_round_trip():
    ledger = CostLedger()
    ledger.energy("dynamic", 1.5, "ops x comparator.dynamic_energy")
    ledger.latency("rounds", 0.25, "rounds x round_time")
    rebuilt = CostLedger.from_rows(ledger.as_rows())
    assert rebuilt.as_rows() == ledger.as_rows()
    assert rebuilt.total(Quantity.ENERGY) == ledger.total(Quantity.ENERGY)


def test_render_includes_provenance():
    ledger = CostLedger()
    ledger.energy("dynamic", 1.0, "ops x unit energy")
    text = ledger.render(title="demo")
    assert "demo" in text
    assert "ops x unit energy" in text
