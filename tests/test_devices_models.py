"""Tests for the continuous device models (linear, VTEAM, ECM, VCM)."""

import math

import pytest

from repro.devices import (
    ECMMemristor,
    LinearIonDriftMemristor,
    VCMMemristor,
    VTEAMMemristor,
    windows,
)
from repro.errors import DeviceError


class TestLinearIonDrift:
    def test_series_resistance_mix(self):
        d = LinearIonDriftMemristor(r_on=100, r_off=16000, x=0.5)
        assert d.resistance() == pytest.approx(0.5 * 100 + 0.5 * 16000)

    def test_positive_bias_moves_toward_lrs(self):
        d = LinearIonDriftMemristor(x=0.1)
        r0 = d.resistance()
        d.apply_voltage(1.0, 1e-3, steps=100)
        assert d.x > 0.1
        assert d.resistance() < r0

    def test_negative_bias_moves_toward_hrs(self):
        d = LinearIonDriftMemristor(x=0.9)
        d.apply_voltage(-1.0, 1e-3, steps=100)
        assert d.x < 0.9

    def test_no_threshold(self):
        # The model's documented flaw: any tiny bias drifts the state.
        d = LinearIonDriftMemristor(x=0.5)
        d.apply_voltage(0.01, 1.0, steps=1000)
        assert d.x != 0.5
        assert not d.has_threshold()

    def test_state_stays_bounded(self):
        d = LinearIonDriftMemristor(x=0.9)
        d.apply_voltage(5.0, 1.0, steps=2000)
        assert 0.0 <= d.x <= 1.0

    def test_window_is_pluggable(self):
        d = LinearIonDriftMemristor(window=windows.rectangular, x=0.5)
        assert d.window is windows.rectangular

    def test_drift_coefficient(self):
        d = LinearIonDriftMemristor(r_on=100, d=10e-9, mu_v=1e-14)
        assert d.drift_coefficient == pytest.approx(1e-14 * 100 / 1e-16)

    def test_rejects_bad_geometry(self):
        with pytest.raises(DeviceError):
            LinearIonDriftMemristor(d=0.0)
        with pytest.raises(DeviceError):
            LinearIonDriftMemristor(mu_v=-1e-14)


class TestVTEAM:
    def test_subthreshold_retention(self):
        d = VTEAMMemristor(x=0.5)
        d.apply_voltage(0.5, 1.0, steps=100)   # below v_on = 0.7
        assert d.x == pytest.approx(0.5)
        assert d.has_threshold()

    def test_above_threshold_sets(self):
        d = VTEAMMemristor(x=0.0)
        d.apply_voltage(1.4, 1e-8, steps=200)
        assert d.x > 0.5

    def test_below_negative_threshold_resets(self):
        d = VTEAMMemristor(x=1.0)
        d.apply_voltage(-1.4, 1e-8, steps=200)
        assert d.x < 0.5

    def test_polarity_flip(self):
        d = VTEAMMemristor(x=0.0, polarity=-1)
        d.apply_voltage(-1.4, 1e-8, steps=200)  # negative now sets
        assert d.x > 0.5

    def test_overdrive_speeds_switching(self):
        t_low = VTEAMMemristor().switching_time(1.0)
        t_high = VTEAMMemristor().switching_time(1.8)
        assert t_high < t_low

    def test_switching_time_matches_integration(self):
        d = VTEAMMemristor(x=0.0)
        t = d.switching_time(1.4, from_x=0.0, to_x=0.9)
        d.apply_voltage(1.4, t, steps=4000)
        assert d.x == pytest.approx(0.9, abs=0.02)

    def test_switching_time_rejects_subthreshold(self):
        with pytest.raises(DeviceError):
            VTEAMMemristor().switching_time(0.3)

    def test_rejects_bad_exponent(self):
        with pytest.raises(DeviceError):
            VTEAMMemristor(a_on=0)


class TestECM:
    def test_nucleation_barrier_retention(self):
        d = ECMMemristor(x=0.5)
        d.apply_voltage(0.2, 100.0, steps=10)  # below v_nucleation = 0.25
        assert d.x == pytest.approx(0.5)
        assert d.has_threshold()

    def test_filament_grows_under_positive_bias(self):
        d = ECMMemristor(x=0.0)
        d.apply_voltage(0.6, 1e-7, steps=500)
        assert d.x > 0.0

    def test_filament_dissolves_under_negative_bias(self):
        d = ECMMemristor(x=1.0)
        d.apply_voltage(-0.6, 1e-7, steps=500)
        assert d.x < 1.0

    def test_exponential_kinetics(self):
        # sinh kinetics: doubling the overdrive speeds switching by far
        # more than 2x (short pulse so neither device saturates).
        slow = ECMMemristor(x=0.0)
        fast = ECMMemristor(x=0.0)
        slow.apply_voltage(0.3, 1e-12, steps=100)
        fast.apply_voltage(0.6, 1e-12, steps=100)
        assert fast.x > 10 * max(slow.x, 1e-12)

    def test_retention_ratio_infinite_below_nucleation(self):
        d = ECMMemristor()
        assert math.isinf(d.retention_ratio(0.1, 1.0))

    def test_retention_ratio_large_at_half_select(self):
        d = ECMMemristor()
        ratio = d.retention_ratio(0.5, 1.0)
        assert ratio > 1e3

    def test_retention_ratio_validates_order(self):
        with pytest.raises(DeviceError):
            ECMMemristor().retention_ratio(1.0, 0.5)


class TestVCM:
    def test_subthreshold_retention(self):
        d = VCMMemristor(x=0.3)
        d.apply_voltage(0.5, 1.0, steps=10)
        assert d.x == pytest.approx(0.3)
        assert d.has_threshold()

    def test_set_and_reset(self):
        d = VCMMemristor(x=0.0)
        d.apply_voltage(1.2, 1e-7, steps=500)
        assert d.x > 0.5
        d.apply_voltage(-1.2, 1e-6, steps=500)
        assert d.x < 0.5

    def test_asymmetric_kinetics(self):
        # tau_reset = 2 * tau_set by default: reset is slower at equal
        # overdrive.
        set_dev = VCMMemristor(x=0.0)
        reset_dev = VCMMemristor(x=1.0)
        set_dev.apply_voltage(0.9, 2e-10, steps=50)
        reset_dev.apply_voltage(-0.9, 2e-10, steps=50)
        assert (set_dev.x - 0.0) > (1.0 - reset_dev.x)

    def test_wear_accumulates(self):
        d = VCMMemristor(x=0.0)
        assert d.wear_cycles == 0.0
        d.apply_voltage(1.5, 1e-7, steps=100)   # full set ~ 0.5 cycles
        d.apply_voltage(-1.5, 1e-6, steps=200)  # full reset ~ 0.5 cycles
        assert d.wear_cycles == pytest.approx(1.0, abs=0.1)
        assert not d.is_worn_out()

    def test_wear_out_detection(self):
        d = VCMMemristor(endurance=0.4)
        d.apply_voltage(1.5, 1e-7, steps=100)
        assert d.is_worn_out()

    def test_rejects_bad_thresholds(self):
        with pytest.raises(DeviceError):
            VCMMemristor(v_set=-0.5)
        with pytest.raises(DeviceError):
            VCMMemristor(v_reset=0.5)
