"""The async batched serving layer (ISSUE 5 tentpole).

Covers the serving contract end to end: request/digest semantics,
dynamic batching with coalescing, the digest result cache, and the four
edge cases the issue calls out — deadline expiry mid-batch, queue-full
rejection that loses no accepted work, retry exhaustion surfacing the
*original* executor error, and drain with requests still in flight.
The hypothesis property at the end is the acceptance criterion: a
batched run is bit-identical to serving each request alone.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import resolve_kernel, run_kernel
from repro.errors import (
    DeadlineExceeded,
    ServeError,
    ServerOverloaded,
    TransientExecutorError,
)
from repro.serve import ServeRequest, request_from_dict, result_to_dict
from repro.serve.frontend import serve_jsonl
from repro.serve.server import KernelServer
from repro.spec import TABLE1


def adder_request(request_id, a, b, *, width=8, **kwargs):
    return ServeRequest(
        id=request_id,
        kernel="adder",
        width=width,
        operands={"a": tuple(a), "b": tuple(b)},
        **kwargs,
    )


def run(coro):
    return asyncio.run(coro)


class TestRequestProtocol:
    def test_digest_ignores_id_and_deadline(self):
        base = adder_request("x", [1], [2])
        twin = adder_request("y", [1], [2], deadline_s=5.0)
        assert base.digest == twin.digest

    def test_digest_covers_semantic_fields(self):
        base = adder_request("x", [1], [2])
        assert base.digest != adder_request("x", [1], [3]).digest
        assert base.digest != adder_request("x", [1], [2], width=16).digest
        assert (base.digest !=
                adder_request("x", [1], [2],
                              overrides={"memristor.write_energy": 2e-15}).digest)

    def test_batch_key_groups_compatible_requests(self):
        key = adder_request("x", [1], [2]).batch_key("spec")
        assert adder_request("y", [7, 8], [9, 10]).batch_key("spec") == key
        assert adder_request("y", [1], [2], width=16).batch_key("spec") != key
        assert adder_request("y", [1], [2]).batch_key("other") != key

    def test_validation_rejects_bad_requests(self):
        with pytest.raises(ServeError):
            ServeRequest(id="x", kind="nope")
        with pytest.raises(ServeError):
            ServeRequest(id="x", kernel="adder")  # functional, no operands
        with pytest.raises(ServeError):
            adder_request("x", [1], [2], deadline_s=0.0)
        with pytest.raises(ServeError):
            adder_request("x", [1], [2], backend="quantum")

    def test_request_from_dict_round_trip(self):
        request = request_from_dict({
            "id": "r1", "op": "kernel", "kernel": "adder", "width": 8,
            "operands": {"a": [1, 2], "b": [3, 4]},
        })
        assert request.operands == {"a": (1, 2), "b": (3, 4)}
        with pytest.raises(ServeError):
            request_from_dict({"id": "r1", "bogus": 1})
        with pytest.raises(ServeError):
            request_from_dict({"id": "r1", "operands": {"a": "12"}})

    def test_result_to_dict_shape(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                return await server.submit(adder_request("r", [1], [2]))

        payload = result_to_dict(run(scenario()))
        assert payload["status"] == "ok"
        assert payload["id"] == "r"
        assert payload["outputs"]["sum"] == [3]
        json.dumps(payload)  # wire format must be JSON-serialisable


class TestBatchingAndCache:
    def test_compatible_requests_coalesce_into_one_batch(self):
        async def scenario():
            async with KernelServer(max_wait_us=50_000) as server:
                return await server.submit_many([
                    adder_request(f"r{i}", [i], [10 + i]) for i in range(6)
                ])

        results = run(scenario())
        assert [r.outputs["sum"] for r in results] == [
            (10 + 2 * i,) for i in range(6)]
        # All six rode one coalesced engine execution.
        assert {r.batch_requests for r in results} == {6}
        assert {r.batch_words for r in results} == {6}

    def test_incompatible_requests_split_groups(self):
        async def scenario():
            async with KernelServer(max_wait_us=50_000) as server:
                return await server.submit_many([
                    adder_request("a", [1], [2], width=8),
                    adder_request("b", [3], [4], width=16),
                ])

        by_id = {r.id: r for r in run(scenario())}
        assert by_id["a"].batch_requests == 1
        assert by_id["b"].batch_requests == 1
        assert by_id["a"].outputs["sum"] == (3,)
        assert by_id["b"].outputs["sum"] == (7,)

    def test_repeat_submission_hits_result_cache(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                first = await server.submit(adder_request("one", [5], [6]))
                second = await server.submit(adder_request("two", [5], [6]))
                return first, second

        first, second = run(scenario())
        assert not first.cached
        assert second.cached
        assert second.id == "two"
        assert second.outputs == first.outputs

    def test_cache_capacity_evicts_lru(self):
        async def scenario():
            async with KernelServer(max_wait_us=0, cache_capacity=1) as server:
                await server.submit(adder_request("a", [1], [1]))
                await server.submit(adder_request("b", [2], [2]))  # evicts a
                return await server.submit(adder_request("a2", [1], [1]))

        assert not run(scenario()).cached

    def test_result_cache_keyed_on_backend_and_spec(self):
        """Identical operands under two backends and two active specs
        must occupy four distinct cache entries (regression: the cache
        was keyed on the request digest alone, so a server whose active
        spec changed kept returning results priced under the old spec).
        """
        hot = TABLE1.derive(
            {"memristor.write_energy": 2 * TABLE1.memristor.write_energy})

        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                functional = await server.submit(
                    adder_request("f", [3], [4], backend="functional"))
                analytical = await server.submit(
                    adder_request("a", [3], [4], backend="analytical"))
                entries_two_backends = server.stats()["cache_entries"]
                server.spec = hot  # re-point the active spec
                rehot = await server.submit(
                    adder_request("f2", [3], [4], backend="functional"))
                entries_after_respec = server.stats()["cache_entries"]
                return (functional, analytical, rehot,
                        entries_two_backends, entries_after_respec)

        functional, analytical, rehot, two_backends, after_respec = run(
            scenario())
        assert two_backends == 2  # backend is part of the cache key
        assert after_respec == 3  # new spec -> new entry, no stale hit
        assert not rehot.cached
        assert rehot.spec_digest != functional.spec_digest
        assert rehot.energy > functional.energy
        assert analytical.backend == "analytical"

    def test_per_request_overrides_derive_spec(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                base = await server.submit(adder_request("b", [1], [2]))
                hot = await server.submit(adder_request(
                    "h", [1], [2],
                    overrides={"memristor.write_energy": 2 * TABLE1.memristor.write_energy}))
                return base, hot

        base, hot = run(scenario())
        assert base.outputs == hot.outputs
        assert base.spec_digest != hot.spec_digest
        assert hot.energy > base.energy

    def test_evaluate_requests_return_table2_metrics(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                return await server.submit(ServeRequest(id="e", kind="evaluate"))

        result = run(scenario())
        assert result.kind == "evaluate"
        assert result.metrics["dna.improvement.energy_delay"] == pytest.approx(
            2880876.557, rel=1e-6)
        assert "math.cim.computing_efficiency" in result.metrics


class TestQueueFullRejection:
    def test_overload_burst_rejects_without_losing_accepted_work(self):
        async def scenario():
            # Submissions enqueue synchronously before the batcher task
            # gets scheduled, so a burst larger than queue_limit
            # deterministically trips the backpressure bound.
            async with KernelServer(queue_limit=4, max_wait_us=0) as server:
                return await server.submit_many(
                    [adder_request(f"r{i}", [i], [i]) for i in range(10)],
                    return_exceptions=True,
                )

        outcomes = run(scenario())
        rejected = [r for r in outcomes if isinstance(r, ServerOverloaded)]
        served = [r for r in outcomes if not isinstance(r, BaseException)]
        assert rejected, "burst beyond queue_limit must trip ServerOverloaded"
        assert len(served) + len(rejected) == 10
        # Every *accepted* request completed with the right answer.
        for result in served:
            i = int(result.id[1:])
            assert result.outputs["sum"] == (2 * i,)

    def test_queue_limit_validation(self):
        with pytest.raises(ServeError):
            KernelServer(queue_limit=0)
        with pytest.raises(ServeError):
            KernelServer(max_batch_size=0)
        with pytest.raises(ServeError):
            KernelServer(retries=-1)


class TestDeadlines:
    def test_deadline_expiry_mid_batch(self):
        """A request whose deadline lapses while a slow batch holds the
        only worker fails with DeadlineExceeded; the slow batch and the
        server survive."""

        def slow_run_batch(request, operands, spec):
            time.sleep(0.15)
            return run_kernel(resolve_kernel(request.kernel, request.width),
                              operands or {}, spec=spec)

        async def scenario():
            async with KernelServer(
                workers=1, max_batch_size=1, max_wait_us=0,
                run_batch=slow_run_batch,
            ) as server:
                slow = asyncio.ensure_future(
                    server.submit(adder_request("slow", [1], [2])))
                await asyncio.sleep(0.02)  # let the slow batch occupy the pool
                with pytest.raises(DeadlineExceeded):
                    await server.submit(
                        adder_request("late", [3], [4], width=16,
                                      deadline_s=0.03))
                return await slow

        result = run(scenario())
        assert result.outputs["sum"] == (3,)

    def test_generous_deadline_still_succeeds(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                return await server.submit(
                    adder_request("ok", [2], [3], deadline_s=30.0))

        assert run(scenario()).outputs["sum"] == (5,)


class TestRetries:
    def test_transient_failures_retry_then_succeed(self):
        attempts = []

        def flaky(request, operands, spec):
            attempts.append(1)
            if len(attempts) < 3:
                raise TransientExecutorError(f"blip {len(attempts)}")
            return run_kernel(resolve_kernel(request.kernel, request.width),
                              operands or {}, spec=spec)

        async def scenario():
            async with KernelServer(
                max_wait_us=0, retries=2, backoff_s=0.001, run_batch=flaky,
            ) as server:
                return await server.submit(adder_request("r", [4], [5]))

        assert run(scenario()).outputs["sum"] == (9,)
        assert len(attempts) == 3

    def test_retry_exhaustion_surfaces_original_error(self):
        attempts = []

        def always_failing(request, operands, spec):
            attempts.append(1)
            raise TransientExecutorError(f"attempt-{len(attempts)}")

        async def scenario():
            async with KernelServer(
                max_wait_us=0, retries=2, backoff_s=0.001,
                run_batch=always_failing,
            ) as server:
                await server.submit(adder_request("r", [1], [2]))

        with pytest.raises(TransientExecutorError) as excinfo:
            run(scenario())
        assert len(attempts) == 3  # initial try + 2 retries
        assert str(excinfo.value) == "attempt-1"  # the original, not the last

    def test_non_transient_errors_do_not_retry(self):
        attempts = []

        def broken(request, operands, spec):
            attempts.append(1)
            raise ValueError("not transient")

        async def scenario():
            async with KernelServer(
                max_wait_us=0, retries=5, run_batch=broken,
            ) as server:
                await server.submit(adder_request("r", [1], [2]))

        with pytest.raises(ValueError):
            run(scenario())
        assert len(attempts) == 1


class TestDrain:
    def test_drain_finishes_inflight_work(self):
        def slow_run_batch(request, operands, spec):
            time.sleep(0.05)
            return run_kernel(resolve_kernel(request.kernel, request.width),
                              operands or {}, spec=spec)

        async def scenario():
            server = KernelServer(max_wait_us=50_000, workers=2,
                                  run_batch=slow_run_batch)
            tasks = [
                asyncio.ensure_future(
                    server.submit(adder_request(f"r{i}", [i], [i])))
                for i in range(4)
            ]
            await asyncio.sleep(0)  # let the submissions enqueue
            await server.drain()
            results = await asyncio.gather(*tasks)
            return server, results

        server, results = run(scenario())
        assert [r.outputs["sum"] for r in results] == [
            (0,), (2,), (4,), (6,)]

        async def after_close():
            await server.submit(adder_request("late", [1], [1]))

        with pytest.raises(ServeError):
            run(after_close())

    def test_context_manager_drains_on_exit(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                result = await server.submit(adder_request("r", [1], [2]))
            assert server._closed
            return result

        assert run(scenario()).outputs["sum"] == (3,)


class TestJsonlFrontend:
    def test_jsonl_round_trip_with_errors(self):
        lines = [
            {"id": "a", "kernel": "adder", "width": 8,
             "operands": {"a": [1, 2], "b": [3, 4]}},
            {"id": "bad", "op": "nope"},
            "not json at all",
            {"id": "c", "kernel": "word-compare", "width": 8,
             "operands": {"a": [2], "b": [2]}},
        ]
        text = "\n".join(
            line if isinstance(line, str) else json.dumps(line)
            for line in lines) + "\n"
        out = io.StringIO()
        stats = serve_jsonl(io.StringIO(text), out, max_wait_us=1000)
        records = {r.get("id"): r
                   for r in map(json.loads, out.getvalue().splitlines())}
        assert stats.total == 4
        assert stats.counts["ok"] == 2
        assert stats.counts["error"] == 2
        assert records["a"]["outputs"]["sum"] == [4, 6]
        assert records["c"]["outputs"]["match"] == [1]
        assert records["bad"]["status"] == "error"

    def test_server_and_options_are_exclusive(self):
        with pytest.raises(ServeError):
            serve_jsonl(io.StringIO(""), io.StringIO(),
                        server=KernelServer(), max_wait_us=1)


class TestAutoRouting:
    def test_auto_small_batch_routes_functional(self):
        from repro.obs.registry import get_registry

        counter = get_registry().get(
            "serve_autoroute_total").labels(backend="functional")
        before = counter.value

        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                return await server.submit(
                    adder_request("r", [1, 2], [3, 4], backend="auto"))

        result = run(scenario())
        assert result.backend == "functional"
        assert result.outputs["sum"] == (4, 6)
        assert counter.value == before + 1

    def test_auto_large_batch_routes_bitplane(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                words = list(range(100))
                return await server.submit(
                    adder_request("r", words, words, backend="auto"))

        result = run(scenario())
        assert result.backend == "functional_bitplane"
        assert result.outputs["sum"] == tuple(2 * i for i in range(100))

    def test_auto_operandless_routes_analytical(self):
        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                return await server.submit(ServeRequest(
                    id="p", kernel="adder", width=8, backend="auto"))

        result = run(scenario())
        assert result.backend == "analytical"
        assert result.energy > 0

    def test_auto_shares_cache_with_explicit_backend(self):
        """Routing rewrites the request before the digest is used, so an
        auto request is indistinguishable from one that named the
        resolved backend — including for the result cache."""

        async def scenario():
            async with KernelServer(max_wait_us=0) as server:
                explicit = await server.submit(
                    adder_request("e", [5], [6], backend="functional"))
                auto = await server.submit(
                    adder_request("a", [5], [6], backend="auto"))
                return explicit, auto

        explicit, auto = run(scenario())
        assert not explicit.cached
        assert auto.cached
        assert auto.outputs == explicit.outputs

    def test_auto_batched_billing_is_bit_identical_to_solo(self):
        """Acceptance: auto-routed requests coalesce with explicit ones
        (same resolved batch key) and the split billing matches a solo
        engine run exactly."""

        async def scenario():
            async with KernelServer(max_wait_us=50_000,
                                    cache_capacity=0) as server:
                return await server.submit_many([
                    adder_request("auto", [1, 2, 3], [4, 5, 6],
                                  backend="auto"),
                    adder_request("explicit", [7], [8],
                                  backend="functional"),
                ])

        auto, explicit = run(scenario())
        assert auto.batch_requests == 2 and explicit.batch_requests == 2
        alone = run_kernel(resolve_kernel("adder", 8),
                           {"a": [1, 2, 3], "b": [4, 5, 6]})
        assert auto.outputs["sum"] == tuple(int(w) for w in alone.word("sum"))
        assert auto.energy == alone.energy
        assert auto.steps_per_word == alone.steps_per_word

    def test_flight_record_carries_resolved_backend(self):
        from repro.obs.flight import FlightRecorder

        recorder = FlightRecorder(capacity=8)

        async def scenario():
            async with KernelServer(max_wait_us=0,
                                    flight=recorder) as server:
                await server.submit(
                    adder_request("fr", [1], [2], backend="auto"))

        run(scenario())
        (record,) = recorder.for_request("fr")
        assert record.backend == "functional"
        assert record.status == "ok"

    def test_jsonl_rejects_unknown_backend_at_parse_time(self):
        """The hostile payload from the issue: a bad ``backend`` must
        fail as a per-line error record naming the offending value, not
        crash the serving loop."""
        text = json.dumps({
            "id": "x", "kernel": "adder", "width": 8,
            "operands": {"a": [1], "b": [2]}, "backend": "quantum",
        }) + "\n"
        out = io.StringIO()
        stats = serve_jsonl(io.StringIO(text), out, max_wait_us=1000)
        (record,) = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert stats.total == 1
        assert stats.counts["error"] == 1
        assert record["id"] == "x"
        assert record["status"] == "error"
        assert "quantum" in record["error"]
        assert "auto" in record["error"]  # the error names the legal set

    def test_auto_is_a_legal_wire_backend(self):
        request = request_from_dict({
            "id": "r1", "kernel": "adder", "width": 8,
            "operands": {"a": [1], "b": [2]}, "backend": "auto",
        })
        assert request.backend == "auto"


word8 = st.integers(min_value=0, max_value=255)


class TestBatchedEqualsSequential:
    @given(
        batches=st.lists(
            st.tuples(
                st.sampled_from(["adder", "word-compare"]),
                st.lists(st.tuples(word8, word8), min_size=1, max_size=6),
            ),
            min_size=1, max_size=8,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_batched_serving_is_bit_identical_to_sequential(self, batches):
        """The acceptance property: coalescing never changes answers."""
        requests = [
            ServeRequest(
                id=f"r{i}", kernel=kernel, width=8,
                operands={"a": tuple(a for a, _ in pairs),
                          "b": tuple(b for _, b in pairs)},
            )
            for i, (kernel, pairs) in enumerate(batches)
        ]

        async def scenario():
            async with KernelServer(max_wait_us=100_000,
                                    cache_capacity=0) as server:
                return await server.submit_many(requests)

        served = run(scenario())
        for request, result in zip(requests, served):
            alone = run_kernel(
                resolve_kernel(request.kernel, request.width),
                {k: list(v) for k, v in request.operands.items()},
            )
            assert result.words == alone.words
            for group in alone.word_outputs:
                assert result.outputs[group] == tuple(
                    int(w) for w in alone.word(group)), (
                    f"{request.kernel} outputs diverged under batching")
            assert result.energy == pytest.approx(alone.energy, rel=1e-12)


def test_stats_snapshot_is_consistent_under_concurrency():
    """Regression: ``stats()`` (the ``/healthz`` extras) is read from
    the telemetry HTTP thread while the event loop and pool threads
    mutate the cache and lifecycle flags.  Before the server lock it
    read field-by-field mid-mutation and could return a torn snapshot
    (e.g. ``cache_entries`` above capacity mid-evict, or ``closed``
    without ``draining``).  Hammer it from several threads during
    heavy distinct-request load and assert every cut is consistent."""
    capacity = 8
    snapshots = []
    errors = []
    stop = threading.Event()

    async def scenario():
        async with KernelServer(max_wait_us=0, workers=2,
                                cache_capacity=capacity) as server:
            def hammer():
                while not stop.is_set():
                    try:
                        snapshots.append(server.stats())
                    except Exception as exc:  # noqa: BLE001 - the regression
                        errors.append(exc)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                for wave in range(8):
                    await server.submit_many([
                        adder_request(f"s{wave}-{i}", [wave], [i])
                        for i in range(16)
                    ])
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
        return server.stats()

    final = run(scenario())
    assert not errors, errors[:3]
    assert snapshots, "the stats hammer never ran"
    for snap in snapshots:
        assert snap["workers"] == 2
        assert 0 <= snap["cache_entries"] <= capacity, (
            "torn snapshot: cache seen above capacity mid-evict")
        assert snap["queue_depth"] >= 0
        if snap["closed"]:
            assert snap["draining"], (
                "torn snapshot: closed observed before draining")
    assert final["closed"] and final["draining"]
