"""Tests for the parallel netlist scheduler."""

import pytest

from repro.compiler import (
    LogicNetwork,
    critical_path_pulses,
    lane_sweep,
    levelise,
    random_network,
    schedule_network,
)
from repro.compiler.mapper import OP_PULSES
from repro.errors import SynthesisError


def wide_network(width=8):
    """*width* independent XORs — embarrassingly parallel."""
    net = LogicNetwork("wide")
    for i in range(width):
        a = net.input(f"a{i}")
        b = net.input(f"b{i}")
        net.output(net.gate("XOR", a, b))
    return net


def chain_network(length=6):
    """A NOT chain — zero parallelism available."""
    net = LogicNetwork("chain")
    signal = net.input("x")
    for _ in range(length):
        signal = net.gate("NOT", signal)
    net.output(signal)
    return net


class TestLevelise:
    def test_independent_gates_share_level(self):
        levels = levelise(wide_network(4))
        assert len(levels) == 1
        assert len(levels[0]) == 4

    def test_chain_one_gate_per_level(self):
        levels = levelise(chain_network(5))
        assert [len(l) for l in levels] == [1] * 5

    def test_levels_respect_dependencies(self):
        net = LogicNetwork()
        a, b = net.input("a"), net.input("b")
        x = net.gate("AND", a, b)
        y = net.gate("OR", x, a)
        net.output(y)
        levels = levelise(net)
        assert levels[0][0].name == x
        assert levels[1][0].name == y


class TestSchedule:
    def test_wide_network_scales_with_lanes(self):
        net = wide_network(8)
        serial = schedule_network(net, lanes=1)
        parallel = schedule_network(net, lanes=8)
        assert parallel.latency_pulses == serial.latency_pulses / 8
        assert parallel.speedup == pytest.approx(8.0)

    def test_chain_gains_nothing(self):
        net = chain_network(6)
        assert schedule_network(net, lanes=16).speedup == pytest.approx(1.0)

    def test_energy_is_lane_independent(self):
        net = random_network(inputs=4, gates=20, outputs=2, seed=1)
        one = schedule_network(net, lanes=1)
        many = schedule_network(net, lanes=8)
        assert one.total_gate_pulses == many.total_gate_pulses

    def test_latency_never_below_critical_path(self):
        for seed in range(5):
            net = random_network(inputs=5, gates=25, outputs=2, seed=seed)
            plan = schedule_network(net, lanes=1000)
            assert plan.latency_pulses >= critical_path_pulses(net)

    def test_unbounded_lanes_reach_level_bound(self):
        """With enough lanes, latency equals the sum of per-level
        maxima (the slot-envelope bound)."""
        net = random_network(inputs=4, gates=15, outputs=2, seed=2)
        plan = schedule_network(net, lanes=1000)
        level_bound = sum(
            max(OP_PULSES[g.op] for g in level) for level in levelise(net)
        )
        assert plan.latency_pulses == level_bound

    def test_every_gate_scheduled_exactly_once(self):
        net = random_network(inputs=4, gates=18, outputs=2, seed=3)
        plan = schedule_network(net, lanes=3)
        scheduled = [g.name for slot in plan.slots for g in slot.gates]
        assert sorted(scheduled) == sorted(n.name for n in net.nodes)

    def test_slot_width_respects_lanes(self):
        net = wide_network(10)
        plan = schedule_network(net, lanes=3)
        assert all(len(slot.gates) <= 3 for slot in plan.slots)

    def test_slot_pulse_envelope(self):
        net = random_network(inputs=4, gates=12, outputs=2, seed=4)
        plan = schedule_network(net, lanes=2)
        for slot in plan.slots:
            assert slot.pulses == max(OP_PULSES[g.op] for g in slot.gates)

    def test_utilisation_bounds(self):
        net = random_network(inputs=4, gates=20, outputs=2, seed=5)
        for lanes in (1, 4, 16):
            u = schedule_network(net, lanes).utilisation()
            assert 0 < u <= 1.0

    def test_lanes_validated(self):
        with pytest.raises(SynthesisError):
            schedule_network(wide_network(2), lanes=0)


class TestLaneSweep:
    def test_monotone_latency(self):
        net = random_network(inputs=6, gates=30, outputs=3, seed=6)
        rows = lane_sweep(net, (1, 2, 4, 8))
        latencies = [r["latency_pulses"] for r in rows]
        assert latencies == sorted(latencies, reverse=True)

    def test_speedup_saturates(self):
        net = random_network(inputs=6, gates=30, outputs=3, seed=6)
        rows = lane_sweep(net, (64, 128))
        assert rows[0]["speedup"] == pytest.approx(rows[1]["speedup"])
