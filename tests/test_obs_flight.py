"""Flight recorder ring buffer (ISSUE 6 tentpole, part 2)."""

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.flight import FlightRecord, FlightRecorder, get_flight_recorder


def record(request_id="r1", status="ok", **kwargs):
    rec = FlightRecord(request_id=request_id, **kwargs)
    rec.close(status)
    return rec


class TestFlightRecord:
    def test_close_is_idempotent_first_wins(self):
        rec = FlightRecord(request_id="r")
        assert rec.close("deadline", error="expired") is True
        assert rec.close("ok") is False  # racing worker-side finish loses
        assert rec.status == "deadline" and rec.error == "expired"

    def test_unknown_status_rejected(self):
        with pytest.raises(ObservabilityError):
            FlightRecord(request_id="r").close("exploded")

    def test_wall_seconds(self):
        rec = FlightRecord(request_id="r", accepted_at=10.0)
        assert rec.wall_s == 0.0  # still pending
        rec.close("ok", at=10.5)
        assert rec.wall_s == pytest.approx(0.5)

    def test_as_dict_round_trips_stages(self):
        rec = FlightRecord(request_id="r", trace_id="t", kernel="adder",
                           backend="functional", accepted_at=1.0)
        rec.stages["queue_wait"] = 0.001
        rec.stages["execute"] = 0.002
        rec.retries = 1
        rec.close("error", error="boom", at=1.01)
        dumped = rec.as_dict()
        assert dumped["request_id"] == "r"
        assert dumped["trace_id"] == "t"
        assert dumped["stages"] == {"queue_wait": 0.001, "execute": 0.002}
        assert dumped["retries"] == 1
        assert dumped["error"] == "boom"
        assert dumped["wall_s"] == pytest.approx(0.01)
        assert "accepted_at" not in dumped  # perf-counter values are private

    def test_describe_mentions_id_status_and_stages(self):
        rec = FlightRecord(request_id="r9", kernel="adder", accepted_at=0.0)
        rec.stages["execute"] = 0.0005
        rec.close("ok", at=0.001)
        line = rec.describe()
        assert "r9" in line and "[ok]" in line and "execute=500us" in line


class TestFlightRecorder:
    def test_capacity_validation(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder(capacity=0)

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder(capacity=3)
        for i in range(5):
            recorder.record(record(f"r{i}"))
        assert len(recorder) == 3
        assert [r.request_id for r in recorder.last()] == ["r2", "r3", "r4"]

    def test_last_n(self):
        recorder = FlightRecorder(capacity=10)
        for i in range(4):
            recorder.record(record(f"r{i}"))
        assert [r.request_id for r in recorder.last(2)] == ["r2", "r3"]
        assert recorder.last(0) == []
        assert len(recorder.last(99)) == 4

    def test_query_by_request_id_and_status(self):
        recorder = FlightRecorder()
        recorder.record(record("a", "ok"))
        recorder.record(record("b", "deadline"))
        recorder.record(record("a", "cached"))
        assert [r.status for r in recorder.for_request("a")] == ["ok", "cached"]
        assert [r.request_id for r in recorder.with_status("deadline")] == ["b"]

    def test_as_dicts(self):
        recorder = FlightRecorder()
        recorder.record(record("a"))
        dumps = recorder.as_dicts()
        assert len(dumps) == 1 and dumps[0]["request_id"] == "a"

    def test_clear(self):
        recorder = FlightRecorder()
        recorder.record(record("a"))
        recorder.clear()
        assert len(recorder) == 0

    def test_concurrent_recording_loses_nothing(self):
        recorder = FlightRecorder(capacity=4000)
        threads = [
            threading.Thread(target=lambda t=t: [
                recorder.record(record(f"t{t}-{i}")) for i in range(500)
            ])
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(recorder) == 2000

    def test_process_wide_recorder_is_shared(self):
        assert get_flight_recorder() is get_flight_recorder()
