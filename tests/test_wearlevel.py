"""Tests for start-gap wear levelling."""

import pytest

from repro.errors import CrossbarError
from repro.reliability import WearLevelledMemory, hot_row_workload


class TestMappingConsistency:
    def test_round_trip_without_levelling(self):
        memory = WearLevelledMemory(8, 8, levelling=False)
        memory.write_int(3, 42)
        assert memory.read_int(3) == 42

    def test_round_trip_through_many_rotations(self):
        memory = WearLevelledMemory(words=6, width=8, gap_interval=1)
        shadow = {}
        for step in range(300):
            logical = step % 6
            value = (step * 13) % 256
            memory.write_int(logical, value)
            shadow[logical] = value
            for address, expected in shadow.items():
                assert memory.read_int(address) == expected, (step, address)
        assert memory.migrations == 300

    def test_mapping_stays_injective(self):
        memory = WearLevelledMemory(words=7, width=4, gap_interval=1)
        for step in range(150):
            memory.write_int(step % 7, step % 16)
            physical = [memory._map(l) for l in range(7)]
            assert len(set(physical)) == 7
            assert memory._gap not in physical

    def test_address_validation(self):
        memory = WearLevelledMemory(4, 4)
        with pytest.raises(CrossbarError):
            memory.write_int(4, 0)
        with pytest.raises(CrossbarError):
            memory.read_int(-1)

    def test_constructor_validation(self):
        with pytest.raises(CrossbarError):
            WearLevelledMemory(0, 4)
        with pytest.raises(CrossbarError):
            WearLevelledMemory(4, 4, gap_interval=0)


class TestWearMetrics:
    def test_hot_workload_skews_baseline(self):
        baseline = WearLevelledMemory(32, 8, levelling=False)
        stats = hot_row_workload(baseline, 3000, seed=2)
        assert stats.wear_ratio > 10

    def test_levelling_flattens_wear(self):
        levelled = WearLevelledMemory(32, 8, gap_interval=8)
        stats = hot_row_workload(levelled, 3000, seed=2)
        assert stats.wear_ratio < 4

    def test_lifetime_gain(self):
        levelled = WearLevelledMemory(32, 8, gap_interval=8)
        baseline = WearLevelledMemory(32, 8, levelling=False)
        s1 = hot_row_workload(levelled, 3000, seed=2)
        s2 = hot_row_workload(baseline, 3000, seed=2)
        assert s1.lifetime_gain_over(s2) > 3

    def test_smaller_gap_interval_levels_better(self):
        fast = WearLevelledMemory(32, 8, gap_interval=4)
        slow = WearLevelledMemory(32, 8, gap_interval=64)
        s_fast = hot_row_workload(fast, 4000, seed=3)
        s_slow = hot_row_workload(slow, 4000, seed=3)
        assert s_fast.wear_ratio < s_slow.wear_ratio

    def test_migration_overhead_counted(self):
        memory = WearLevelledMemory(16, 8, gap_interval=4)
        hot_row_workload(memory, 400, seed=0)
        assert memory.migrations == 400 // 4
        # Migration writes appear in the wear counters too.
        assert memory.stats().total_writes >= 400

    def test_uniform_workload_already_level(self):
        baseline = WearLevelledMemory(16, 8, levelling=False)
        stats = hot_row_workload(baseline, 4000, hot_fraction=0.0, seed=4)
        assert stats.wear_ratio < 2

    def test_workload_validation(self):
        memory = WearLevelledMemory(8, 8)
        with pytest.raises(CrossbarError):
            hot_row_workload(memory, 10, hot_fraction=1.5)
        with pytest.raises(CrossbarError):
            hot_row_workload(memory, 10, hot_rows=100)

    def test_wear_stats_zero_writes(self):
        memory = WearLevelledMemory(4, 4)
        assert memory.stats().wear_ratio == 1.0
