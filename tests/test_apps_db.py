"""Tests for the in-memory database engine."""

import pytest

from repro.apps.db import CIMTable, Column, ScanCostModel, select_speedup
from repro.errors import WorkloadError


def make_table(capacity=16):
    table = CIMTable([Column("id", 8), Column("qty", 8)], capacity=capacity)
    for i, qty in enumerate((10, 20, 10, 5, 10, 99)):
        table.insert(id=qty, qty=i)
    return table


class TestSchema:
    def test_column_validation(self):
        with pytest.raises(WorkloadError):
            Column("", 8)
        with pytest.raises(WorkloadError):
            Column("x", 0)
        with pytest.raises(WorkloadError):
            Column("x", 17)

    def test_table_validation(self):
        with pytest.raises(WorkloadError):
            CIMTable([])
        with pytest.raises(WorkloadError):
            CIMTable([Column("a", 4), Column("a", 4)])
        with pytest.raises(WorkloadError):
            CIMTable([Column("a", 4)], capacity=0)


class TestInsert:
    def test_row_ids_sequential(self):
        table = CIMTable([Column("k", 4)], capacity=4)
        assert table.insert(k=1) == 0
        assert table.insert(k=2) == 1
        assert len(table) == 2

    def test_capacity_enforced(self):
        table = CIMTable([Column("k", 4)], capacity=1)
        table.insert(k=0)
        with pytest.raises(WorkloadError):
            table.insert(k=1)

    def test_missing_column_rejected(self):
        table = CIMTable([Column("a", 4), Column("b", 4)])
        with pytest.raises(WorkloadError):
            table.insert(a=1)

    def test_unknown_column_rejected(self):
        table = CIMTable([Column("a", 4)])
        with pytest.raises(WorkloadError):
            table.insert(a=1, ghost=2)

    def test_value_range_checked(self):
        table = CIMTable([Column("a", 4)])
        with pytest.raises(WorkloadError):
            table.insert(a=16)


class TestQueries:
    def test_select_equal_finds_all(self):
        table = make_table()
        assert table.select_equal(10) == [0, 2, 4]

    def test_select_no_match(self):
        table = make_table()
        assert table.select_equal(77) == []

    def test_select_validates_key(self):
        table = make_table()
        with pytest.raises(WorkloadError):
            table.select_equal(256)

    def test_fetch(self):
        table = make_table()
        assert table.fetch(3, "qty") == 3
        with pytest.raises(WorkloadError):
            table.fetch(3, "ghost")
        with pytest.raises(WorkloadError):
            table.fetch(99, "qty")

    def test_sum_column(self):
        table = make_table()
        assert table.sum_column("qty") == sum(range(6))
        with pytest.raises(WorkloadError):
            table.sum_column("ghost")

    def test_query_log_records_costs(self):
        table = make_table()
        table.select_equal(10)
        table.sum_column("qty")
        kinds = [entry.kind for entry in table.query_log]
        assert kinds == ["select=", "sum(qty)"]
        assert all(entry.latency > 0 for entry in table.query_log)


class TestScanComparison:
    def test_scan_cost_scales_with_rows(self):
        model = ScanCostModel()
        assert model.select_cost(1000).latency == pytest.approx(
            10 * model.select_cost(100).latency
        )

    def test_cam_select_beats_scan(self):
        """The O(1)-vs-O(n) argument: associative search latency is one
        array access; the scan pays ~83 ns per row."""
        table = make_table()
        cam, scan, speedup = select_speedup(table, 10)
        assert cam.latency < scan.latency
        assert speedup > 100

    def test_speedup_grows_with_table_size(self):
        small = make_table()
        big = CIMTable([Column("id", 8), Column("qty", 8)], capacity=64)
        for i in range(60):
            big.insert(id=i % 16, qty=i % 200)
        _, _, s_small = select_speedup(small, 10)
        _, _, s_big = select_speedup(big, 3)
        assert s_big > s_small

    def test_scan_validation(self):
        with pytest.raises(WorkloadError):
            ScanCostModel().select_cost(-1)
