"""Tests for repro.engine: packing, kernel cache, executors, builtins."""

import numpy as np
import pytest

from repro.engine import (
    BACKENDS,
    KERNEL_CACHE_CAPACITY,
    MAX_WIDTH,
    CAMMatchCost,
    adder_kernel,
    bits_to_int,
    cam_match_kernel,
    clear_kernel_cache,
    comparator_kernel,
    compile_kernel,
    compile_program,
    int_to_bits,
    kernel_cache_len,
    kernel_catalog,
    kernel_for_program,
    pack_words,
    program_digest,
    run_kernel,
    unpack_words,
    word_comparator_kernel,
)
from repro.compiler import random_network
from repro.errors import EngineError
from repro.logic.adders import ripple_adder_program
from repro.obs.registry import get_registry


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_kernel_cache()
    yield
    clear_kernel_cache()


class TestPacking:
    def test_int_bits_round_trip(self):
        for value in (0, 1, 5, 255, (1 << 16) - 1):
            assert bits_to_int(int_to_bits(value, 16)) == value

    def test_pack_words_little_endian(self):
        bits = pack_words([6], 4)
        assert bits.tolist() == [[0, 1, 1, 0]]

    def test_pack_unpack_round_trip(self):
        values = np.array([0, 1, 2**32 - 1, 12345], dtype=np.uint64)
        bits = pack_words(values, 32)
        assert np.array_equal(unpack_words(bits), values)

    def test_value_too_wide_rejected(self):
        with pytest.raises(EngineError):
            pack_words([4], 2)

    def test_width_limits(self):
        with pytest.raises(EngineError):
            pack_words([0], 0)
        with pytest.raises(EngineError):
            pack_words([0], MAX_WIDTH + 1)

    def test_empty_batch_rejected(self):
        """Regression: an empty batch used to pack into a (0, width)
        matrix and fail much later inside the executor."""
        with pytest.raises(EngineError, match="empty word batch"):
            pack_words([], 8)
        with pytest.raises(EngineError, match="empty word batch"):
            pack_words(np.array([], dtype=np.uint64), 8)

    def test_float_batch_rejected(self):
        """Regression: float words used to truncate silently."""
        with pytest.raises(EngineError, match="silently truncate"):
            pack_words([1.5, 2.0], 8)
        with pytest.raises(EngineError, match="silently truncate"):
            pack_words(np.array([1.0, 2.0]), 8)

    def test_too_wide_word_names_offending_index(self):
        """Regression: the error must pinpoint the bad word in a batch."""
        with pytest.raises(EngineError, match=r"word 2 = 256"):
            pack_words([0, 255, 256, 1], 8)

    def test_negative_word_names_offending_index(self):
        with pytest.raises(EngineError, match=r"word 1 is negative"):
            pack_words([3, -1, 2], 8)
        with pytest.raises(EngineError, match=r"word 0 is negative"):
            pack_words([-(1 << 70)], 8)

    def test_oversize_python_ints_rejected_with_index(self):
        """Regression: Python ints >= 2**64 used to crash in the uint64
        cast instead of raising a typed error."""
        with pytest.raises(EngineError, match=r"word 1 = \d+ does not fit"):
            pack_words([1, 1 << 70], 32)
        with pytest.raises(EngineError, match=r"word 0 is str"):
            pack_words(np.array(["ten", 3], dtype=object), 8)

    def test_bool_batch_packs(self):
        assert pack_words([True, False], 1).tolist() == [[1], [0]]

    def test_awkward_widths_round_trip(self):
        """Widths that are not multiples of 8 or 64 must round-trip."""
        for width in (1, 3, 7, 9, 13, 31, 33, 63):
            values = np.arange(5, dtype=np.uint64) % (1 << min(width, 62))
            assert np.array_equal(
                unpack_words(pack_words(values, width)), values)


class TestKernelCache:
    def test_repeat_build_hits_cache(self):
        registry = get_registry()
        hits = registry.counter("engine_kernel_cache_total").labels(result="hit")
        misses = registry.counter("engine_kernel_cache_total").labels(result="miss")
        h0, m0 = hits.value, misses.value
        first = adder_kernel(8)
        second = adder_kernel(8)
        assert first is second
        assert misses.value == m0 + 1
        assert hits.value == h0 + 1

    def test_digest_distinguishes_programs(self):
        assert (program_digest(ripple_adder_program(4))
                != program_digest(ripple_adder_program(5)))

    def test_kernel_for_program_cached_by_digest(self):
        program = ripple_adder_program(4)
        k1 = kernel_for_program(program)
        k2 = kernel_for_program(ripple_adder_program(4))
        assert k1 is k2

    def test_lru_eviction_bounds_cache(self):
        for width in range(1, KERNEL_CACHE_CAPACITY + 10):
            word_comparator_kernel(1 + width % MAX_WIDTH)
        assert kernel_cache_len() <= KERNEL_CACHE_CAPACITY

    def test_allocation_shrinks_devices_not_steps(self):
        program = ripple_adder_program(8)
        allocated = compile_program(program, allocate=True)
        raw = compile_program(program, allocate=False)
        assert allocated.step_count == raw.step_count
        assert allocated.device_count <= raw.device_count


class TestCompileKernel:
    def test_netlist_pipeline_end_to_end(self):
        network = random_network(inputs=4, gates=12, outputs=2, seed=1)
        kernel = compile_kernel(network, name="fuzz", lanes=4)
        assert kernel.meta["gates"] == 12
        assert kernel.meta["lanes"] == 4
        # One word per input assignment: outputs must equal the netlist.
        assignments = [
            {name: (i >> lane) & 1 for lane, name in enumerate(network.inputs)}
            for i in range(2 ** len(network.inputs))
        ]
        batch = {
            name: [a[name] for a in assignments] for name in network.inputs
        }
        result = run_kernel(kernel, batch)
        for index, assignment in enumerate(assignments):
            expected = network.evaluate(assignment)
            for signal in network.outputs:
                assert result.outputs[signal][index] == expected[signal]

    def test_compile_kernel_cached(self):
        network = random_network(inputs=3, gates=6, outputs=1, seed=2)
        assert compile_kernel(network) is compile_kernel(network)


class TestExecutors:
    def test_functional_matches_known_sums(self):
        kernel = adder_kernel(8)
        result = run_kernel(kernel, {"a": [1, 250, 0], "b": [2, 10, 0]})
        assert result.word("sum").tolist() == [3, 4, 0]
        assert result.bit("cout").tolist() == [0, 1, 0]

    def test_electrical_backend_agrees(self):
        kernel = adder_kernel(4)
        result = run_kernel(kernel, {"a": [7, 9], "b": [8, 9]},
                            backend="electrical")
        assert result.word("sum").tolist() == [15, 2]

    def test_analytical_prices_without_values(self):
        kernel = adder_kernel(32)
        result = run_kernel(kernel, backend="analytical", words=1_000_000)
        assert result.outputs is None
        cost = kernel.cost
        assert result.energy == pytest.approx(cost.dynamic_energy * 1e6)
        assert result.latency == pytest.approx(cost.latency)
        with pytest.raises(EngineError):
            result.word("sum")

    def test_analytical_fallback_uses_compute_steps(self):
        kernel = word_comparator_kernel(4)          # no attached cost model
        result = run_kernel(kernel, backend="analytical", words=10)
        assert result.steps_per_word == kernel.compute_step_count

    def test_lockstep_cost_asymmetry(self):
        kernel = adder_kernel(4)
        one = run_kernel(kernel, {"a": [1], "b": [1]})
        many = run_kernel(kernel, {"a": [1] * 64, "b": [1] * 64})
        assert many.latency == pytest.approx(one.latency)
        assert many.energy == pytest.approx(64 * one.energy)

    def test_dispatch_counter_by_backend(self):
        counter = get_registry().counter("engine_executor_dispatch_total")
        kernel = adder_kernel(4)
        before = counter.labels(backend="functional").value
        run_kernel(kernel, {"a": [1], "b": [2]})
        assert counter.labels(backend="functional").value == before + 1

    def test_raw_signal_operands(self):
        kernel = comparator_kernel()
        result = run_kernel(kernel, {
            "a0": [1, 0], "a1": [0, 1], "b0": [1, 1], "b1": [0, 1],
        })
        assert result.bit("match").tolist() == [1, 0]

    def test_error_paths(self):
        kernel = adder_kernel(4)
        with pytest.raises(EngineError):
            run_kernel(kernel, {"a": [1], "b": [2]}, backend="quantum")
        with pytest.raises(EngineError):
            run_kernel(kernel, {"a": [1]})                  # missing b
        with pytest.raises(EngineError):
            run_kernel(kernel, {"a": [1], "b": [1, 2]})     # ragged batch
        with pytest.raises(EngineError):
            run_kernel(kernel, {"a": [1], "b": [2], "c": [3]})
        with pytest.raises(EngineError):
            run_kernel(kernel, {"a": [], "b": []})
        with pytest.raises(EngineError):
            run_kernel(kernel)                              # no batch size

    def test_backends_tuple_is_exhaustive(self):
        assert BACKENDS == (
            "functional", "functional_bitplane", "electrical", "analytical",
        )


class TestBuiltins:
    def test_catalog_lists_all_builtins(self):
        names = [entry["name"] for entry in kernel_catalog()]
        assert names == [
            "comparator", "word-compare-16", "tc-adder-32", "cam-match-16",
        ]

    def test_comparator_kernel_semantics(self):
        result = run_kernel(comparator_kernel(), {
            "a": [0, 1, 2, 3], "b": [0, 1, 2, 0],
        })
        assert result.bit("match").tolist() == [1, 1, 1, 0]

    def test_cam_match_cost_mirrors_cam_accounting(self):
        cost = CAMMatchCost(width=16)
        assert cost.memristors == 32
        assert cost.steps == 1
        assert cost.latency == cost.technology.write_time
        assert cost.dynamic_energy == pytest.approx(
            16 * cost.technology.write_energy)

    def test_cam_match_kernel_equality(self):
        result = run_kernel(cam_match_kernel(8), {
            "a": [42, 42, 0], "b": [42, 43, 0],
        })
        assert result.bit("match").tolist() == [1, 0, 1]

    def test_width_guard(self):
        with pytest.raises(EngineError):
            adder_kernel(0)
        with pytest.raises(EngineError):
            word_comparator_kernel(MAX_WIDTH + 1)


class TestKernelsCLI:
    def run_cli(self, *argv):
        import contextlib
        import io

        from repro.__main__ import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_kernels_lists_builtins(self):
        code, out = self.run_cli("kernels")
        assert code == 0
        for name in ("comparator", "word-compare-32", "tc-adder-32",
                     "cam-match-32"):
            assert name in out
        assert "45 fJ" in out          # ComparatorCost Table 1 energy

    def test_kernels_width_flag(self):
        code, out = self.run_cli("kernels", "--width", "8")
        assert code == 0
        assert "tc-adder-8" in out

    def test_kernels_profile_plumbing(self):
        code, out = self.run_cli("kernels", "--profile")
        assert code == 0
        assert "span tree" in out
        assert "engine_kernel_cache_total" in out
