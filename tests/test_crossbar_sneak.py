"""Tests for sneak-path / read-margin analysis — the Fig 3 claims."""

import pytest

from repro.crossbar import (
    CrossbarArray,
    FloatingBias,
    GroundedBias,
    VThirdBias,
    margin_vs_size,
    max_readable_size,
    read_margin,
    sense_current,
    solve_access,
    worst_case_array,
)
from repro.crossbar.selector import CRSJunction, OneR, OneSelectorOneR
from repro.errors import CrossbarError


class TestWorstCaseArray:
    def test_target_and_background(self):
        array = worst_case_array(4, 4, None, target_bit=0)
        pattern = array.read_pattern()
        assert pattern[0][0] == 0
        assert sum(sum(row) for row in pattern) == 15

    def test_custom_selected_cell(self):
        array = worst_case_array(4, 4, None, 0, sel_row=2, sel_col=3)
        assert array.cell(2, 3).as_bit() == 0

    def test_rejects_bad_bits(self):
        with pytest.raises(CrossbarError):
            worst_case_array(2, 2, None, target_bit=2)


class TestSenseCurrent:
    def test_lrs_read_dominated_by_cell(self):
        array = CrossbarArray(4, 4)
        array.fill(0)
        array.cell(0, 0).write_bit(1)
        i = sense_current(array, GroundedBias(), 0, 0, 1.0)
        device = array.cell(0, 0).device if hasattr(array.cell(0, 0), "device") else array.cell(0, 0)
        assert i == pytest.approx(1.0 / device.r_on, rel=0.02)

    def test_sneak_inflates_hrs_read(self):
        """Reading an HRS cell against an all-LRS background under
        floating bias: the sneak current dwarfs the cell current."""
        array = worst_case_array(8, 8, None, target_bit=0)
        i = sense_current(array, FloatingBias(), 0, 0, 1.0)
        device = array.cell(0, 0)
        i_cell_only = 1.0 / device.resistance()
        assert i > 50 * i_cell_only

    def test_grounded_scheme_reduces_sneak(self):
        array = worst_case_array(8, 8, None, target_bit=0)
        i_float = sense_current(array, FloatingBias(), 0, 0, 1.0)
        array2 = worst_case_array(8, 8, None, target_bit=0)
        i_grounded = sense_current(array2, GroundedBias(), 0, 0, 1.0)
        assert i_grounded < i_float


class TestReadMargin:
    def test_small_1r_array_is_readable(self):
        report = read_margin(2, 2)
        assert report.margin > 2.0
        assert report.readable()

    def test_1r_margin_collapses_with_size(self):
        reports = margin_vs_size((2, 4, 8, 16))
        margins = [r.margin for r in reports]
        assert margins == sorted(margins, reverse=True)
        assert margins[-1] < 2.0

    def test_crs_margin_stays_high(self):
        factory = lambda r, c: CRSJunction()
        reports = margin_vs_size((2, 4, 8, 16), factory)
        assert min(r.margin for r in reports) > 10.0

    def test_selector_margin_stays_high(self):
        factory = lambda r, c: OneSelectorOneR()
        reports = margin_vs_size((2, 4, 8), factory)
        assert min(r.margin for r in reports) > 10.0

    def test_v_third_beats_floating_for_1r(self):
        floating = read_margin(8, 8, scheme=FloatingBias())
        third = read_margin(8, 8, scheme=VThirdBias())
        assert third.margin > floating.margin

    def test_margin_report_fields(self):
        report = read_margin(4, 4, scheme=VThirdBias())
        assert report.rows == report.cols == 4
        assert report.scheme == "v/3"
        assert report.current_high >= report.current_low > 0

    def test_infinite_margin_when_low_current_zero(self):
        from repro.crossbar.sneak import MarginReport

        report = MarginReport(2, 2, "x", current_high=1.0, current_low=0.0)
        assert report.margin == float("inf")


class TestMaxReadableSize:
    def test_1r_limited_to_small_arrays(self):
        """The paper: 'the maximum array is limited to small arrays'."""
        best = max_readable_size((2, 4, 8, 16))
        assert best <= 4

    def test_crs_unlocks_larger_arrays(self):
        factory = lambda r, c: CRSJunction()
        best = max_readable_size((2, 4, 8, 16), factory)
        assert best == 16

    def test_returns_zero_when_nothing_qualifies(self):
        best = max_readable_size((16, 32), min_margin=1e9)
        assert best == 0


class TestSolveAccessConvergence:
    def test_linear_junctions_one_pass(self):
        array = CrossbarArray(4, 4)
        array.fill(1)
        sol = solve_access(array, GroundedBias(), 0, 0, 1.0)
        assert sol.junction_voltage(0, 0) == pytest.approx(1.0)

    def test_nonlinear_junctions_converge(self):
        array = CrossbarArray(4, 4, lambda r, c: OneSelectorOneR())
        array.fill(1)
        sol_a = solve_access(array, FloatingBias(), 0, 0, 1.0)
        sol_b = solve_access(array, FloatingBias(), 0, 0, 1.0)
        assert sol_a.col_currents[0] == pytest.approx(sol_b.col_currents[0])


class TestSolveAccessRobustness:
    def test_converged_flag_set_for_linear_junctions(self):
        array = CrossbarArray(3, 3)
        array.fill(1)
        sol = solve_access(array, GroundedBias(), 0, 0, 1.0)
        assert sol.converged is True

    def test_nonconvergence_is_flagged_counted_and_logged(self, caplog):
        """A junction whose conductance never settles must not be
        returned silently: the solution carries converged=False, the
        counter increments, and a warning is logged."""
        import logging

        from repro.obs import get_registry

        class OscillatingJunction:
            def __init__(self):
                self._fl = True

            def resistance_at(self, v):
                self._fl = not self._fl
                return 1e3 if self._fl else 1e6

            def resistance(self):
                return 1e3

        array = CrossbarArray(2, 2, lambda r, c: OscillatingJunction())
        counter = get_registry().get("crossbar_fixedpoint_nonconverged_total")
        before = sum(c.value for c in counter.children()) + counter.value
        with caplog.at_level(logging.WARNING, logger="repro"):
            sol = solve_access(array, GroundedBias(), 0, 0, 1.0, iterations=4)
        after = sum(c.value for c in counter.children()) + counter.value
        assert sol.converged is False
        assert after == before + 1
        assert any("did not converge" in rec.message for rec in caplog.records)

    def test_zero_resistance_junction_raises_crossbar_error(self):
        """A shorted junction model must surface as CrossbarError, not a
        bare ZeroDivisionError from 1/0."""

        class ShortedJunction:
            def resistance_at(self, v):
                return 0.0

            def resistance(self):
                return 1e3  # the initial matrix build succeeds

        array = CrossbarArray(2, 2, lambda r, c: ShortedJunction())
        with pytest.raises(CrossbarError, match="non-positive resistance"):
            solve_access(array, GroundedBias(), 0, 0, 1.0)

    def test_wire_resistance_access_path(self):
        """solve_access threads wire_resistance through to the nodal
        solver: IR drop must reduce the current sensed at a cell far
        from both drivers (the corner cell sits next to them and sees
        no drop)."""
        array = worst_case_array(8, 8, None, target_bit=1,
                                 sel_row=7, sel_col=7)
        ideal = sense_current(array, GroundedBias(), 7, 7, 1.0)
        wired = sense_current(array, GroundedBias(), 7, 7, 1.0,
                              wire_resistance=200.0)
        assert 0 < wired < 0.9 * ideal

    def test_read_margin_with_wire_resistance(self):
        report = read_margin(8, 8, wire_resistance=5.0)
        assert report.margin >= 1.0
        assert report.current_high > 0
