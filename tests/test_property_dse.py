"""Property test: the paper's headline ordering is robust.

Table 2's conclusion — CIM beats the conventional architecture on
energy-delay for both workloads — should not hinge on the exact
Table 1 numbers.  Hypothesis perturbs the technology parameters across
wide-but-physical ranges and asserts the ordering survives whenever
the memristor write energy stays at or below its Table 1 value (1 fJ).
Above that the claim genuinely can flip, so 1 fJ is the boundary the
property pins.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.dse import cim_dominates, run_sweep
from repro.spec import TABLE1
from repro.units import FEMTO, NANO, PICO

#: Perturbation ranges, all empirically inside the CIM-dominant region
#: as long as write_energy <= 1 fJ (the Table 1 value).
write_energy = st.floats(min_value=0.01 * FEMTO, max_value=1.0 * FEMTO)
write_time = st.floats(min_value=50 * PICO, max_value=2000 * PICO)
gate_leakage = st.floats(min_value=10 * NANO, max_value=430 * NANO)
hit_ratio = st.floats(min_value=0.0, max_value=1.0)


@given(
    we=write_energy,
    wt=write_time,
    leak=gate_leakage,
    dna_hit=hit_ratio,
    math_hit=hit_ratio,
)
@settings(max_examples=40, deadline=None)
def test_cim_energy_delay_ordering_survives_perturbation(
    we, wt, leak, dna_hit, math_hit
):
    assert we <= TABLE1.memristor.write_energy
    grid = {
        "memristor.write_energy": [we],
        "memristor.write_time": [wt],
        "cmos.gate_leakage": [leak],
        "workloads.dna_hit_ratio": [dna_hit],
        "workloads.math_hit_ratio": [math_hit],
    }
    result = run_sweep(grid, serial=True, keep_ledgers=False, use_cache=False)
    (point,) = result.points
    assert cim_dominates(point, "dna"), point.overrides
    assert cim_dominates(point, "math"), point.overrides
    # The improvement factors themselves stay finite and positive.
    for app in ("dna", "math"):
        edp = point.metrics[f"{app}.improvement.energy_delay"]
        assert 1.0 < edp < float("inf")
