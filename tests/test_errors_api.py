"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro.errors import (
    ArchitectureError,
    CrossbarError,
    DeviceError,
    LogicError,
    ReproError,
    SynthesisError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("error", [
        DeviceError, CrossbarError, LogicError,
        ArchitectureError, WorkloadError, SynthesisError,
    ])
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_synthesis_error_is_logic_error(self):
        assert issubclass(SynthesisError, LogicError)

    def test_library_failures_are_catchable_as_repro_error(self):
        from repro.devices import IdealBipolarMemristor

        with pytest.raises(ReproError):
            IdealBipolarMemristor(r_on=10, r_off=1)

    def test_repro_error_does_not_mask_type_errors(self):
        assert not issubclass(TypeError, ReproError)


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    @pytest.mark.parametrize("package", [
        "devices", "crossbar", "logic", "cmosarch", "core",
        "apps", "sim", "analysis", "analog", "compiler",
        "reliability", "interconnect", "units",
    ])
    def test_subpackages_reachable(self, package):
        assert hasattr(repro, package)

    @pytest.mark.parametrize("package", [
        repro.devices, repro.crossbar, repro.logic, repro.core,
        repro.analog, repro.compiler, repro.reliability,
        repro.interconnect, repro.analysis, repro.sim,
    ])
    def test_all_exports_resolve(self, package):
        """Every name in __all__ must actually exist — catches stale
        export lists."""
        for name in package.__all__:
            assert hasattr(package, name), f"{package.__name__}.{name}"

    def test_paper_table2_covers_all_cells(self):
        from repro.core import PAPER_TABLE2

        assert set(PAPER_TABLE2) == {
            ("dna", "conventional"), ("dna", "cim"),
            ("math", "conventional"), ("math", "cim"),
        }
        for cell in PAPER_TABLE2.values():
            assert set(cell) == {
                "energy_delay_per_op",
                "computing_efficiency",
                "performance_per_area",
            }

    def test_metric_labels_match_metric_keys(self):
        from repro.analysis import METRIC_LABELS
        from repro.core import PAPER_TABLE2

        keys = {key for _, key in METRIC_LABELS}
        assert keys == set(PAPER_TABLE2[("dna", "cim")])

    def test_every_public_module_has_docstring(self):
        import importlib
        import pathlib

        root = pathlib.Path(repro.__file__).parent
        for path in sorted(root.rglob("*.py")):
            relative = path.relative_to(root.parent)
            module_name = ".".join(relative.with_suffix("").parts)
            module = importlib.import_module(module_name)
            assert module.__doc__, f"{module_name} lacks a docstring"
