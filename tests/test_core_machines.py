"""Tests for the conventional and CIM machine evaluations."""

import pytest

from repro.core import (
    CIMMachine,
    cim_dna_machine,
    cim_math_machine,
    conventional_dna_machine,
    conventional_math_machine,
    dna_paper_workload,
    math_paper_workload,
    parallel_additions_workload,
)
from repro.errors import ArchitectureError
from repro.logic import ComparatorCost, TCAdderCost
from repro.units import MM2, NS


class TestConventionalMath:
    """Table 2's mathematics column reconstructs exactly (DESIGN.md s5)."""

    def test_round_time_9_81_ns(self):
        machine = conventional_math_machine()
        w = math_paper_workload()
        # 2 reads x 4.28 cycles + 1 write cycle = 9.56 ns, + 252 ps CLA.
        assert machine.round_time(w) == pytest.approx(9.812 * NS, rel=1e-3)

    def test_single_round(self):
        report = conventional_math_machine().evaluate(math_paper_workload())
        assert report.rounds == 1
        assert report.parallel_units == 10**6

    def test_energy_close_to_paper(self):
        """Paper-implied E = 1.533e-4 J (units x 1/64 W x T); ours adds
        the (small) dynamic and leakage terms."""
        report = conventional_math_machine().evaluate(math_paper_workload())
        assert report.energy == pytest.approx(1.533e-4, rel=0.01)

    def test_cache_static_dominates(self):
        report = conventional_math_machine().evaluate(math_paper_workload())
        assert report.dominant_energy_component() == "cache_static"

    def test_communication_energy_fraction_over_70_percent(self):
        """The paper: 'energy consumption of the cache accesses and
        communication makes up easily 70% to 90%'."""
        machine = conventional_math_machine()
        assert machine.communication_energy_fraction(math_paper_workload()) > 0.7


class TestConventionalDNA:
    def test_execution_time_83ms(self):
        """Back-computed from Table 2: T = 0.083 s."""
        report = conventional_dna_machine().evaluate(dna_paper_workload())
        assert report.time == pytest.approx(0.0830, rel=0.01)

    def test_rounds(self):
        report = conventional_dna_machine().evaluate(dna_paper_workload())
        assert report.rounds == 10000

    def test_area_about_173_mm2(self):
        report = conventional_dna_machine().evaluate(dna_paper_workload())
        assert report.area / MM2 == pytest.approx(172.9, rel=0.01)


class TestCIMMachineModel:
    def test_paper_packing_units(self):
        assert cim_dna_machine("paper").units == 600000

    def test_max_packing_units(self):
        machine = cim_dna_machine("max")
        assert machine.units == (18750 * 8 * 1024) // 13

    def test_unknown_packing_rejected(self):
        with pytest.raises(ValueError):
            cim_dna_machine("typo")

    def test_zero_static_energy(self):
        report = cim_math_machine().evaluate(math_paper_workload())
        assert report.energy_breakdown["crossbar_static"] == 0.0

    def test_cim_math_time_36ns(self):
        """Back-computed from Table 2: T = 36.2 ns (26.6 + 9.56)."""
        report = cim_math_machine().evaluate(math_paper_workload())
        assert report.time == pytest.approx(36.16 * NS, rel=1e-3)

    def test_cim_math_energy_256fj_per_op(self):
        report = cim_math_machine().evaluate(math_paper_workload())
        assert report.energy_per_op == pytest.approx(256e-15)

    def test_cim_dna_time_tracks_conventional(self):
        """With matched unit counts both machines are memory-bound and
        nearly iso-latency — the Table 2 situation."""
        conv = conventional_dna_machine().evaluate(dna_paper_workload())
        cim = cim_dna_machine("paper").evaluate(dna_paper_workload())
        assert cim.time == pytest.approx(conv.time, rel=0.05)

    def test_max_packing_is_faster(self):
        paper = cim_dna_machine("paper").evaluate(dna_paper_workload())
        packed = cim_dna_machine("max").evaluate(dna_paper_workload())
        assert packed.time < paper.time

    def test_units_must_fit_crossbar(self):
        with pytest.raises(ArchitectureError):
            CIMMachine(
                name="overfull",
                units=10**9,
                unit=ComparatorCost(),
                storage_devices=1000,
            )

    def test_unit_cost_interface_checked(self):
        class Junk:
            pass

        with pytest.raises(ArchitectureError):
            CIMMachine(name="junk", units=1, unit=Junk(), storage_devices=100,
                       compute_in_storage=False)

    def test_compute_outside_storage_adds_area(self):
        inside = CIMMachine(
            name="in", units=10, unit=TCAdderCost(width=8),
            storage_devices=1000, compute_in_storage=True,
        )
        outside = CIMMachine(
            name="out", units=10, unit=TCAdderCost(width=8),
            storage_devices=1000, compute_in_storage=False,
        )
        assert outside.total_devices() == 1000 + 100
        assert outside.area() > inside.area()

    def test_packed_into_crossbar_rejects_tiny_storage(self):
        with pytest.raises(ArchitectureError):
            CIMMachine.packed_into_crossbar("tiny", ComparatorCost(), 5)

    def test_hit_ratio_changes_round_time(self):
        machine = cim_math_machine()
        fast = machine.round_time(parallel_additions_workload(hit_ratio=1.0))
        slow = machine.round_time(parallel_additions_workload(hit_ratio=0.5))
        assert slow > fast
