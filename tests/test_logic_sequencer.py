"""Tests for the electrical IMPLY machine (sequencer)."""

import pytest

from repro.devices import MEMRISTOR_5NM, MemristorTechnology
from repro.errors import LogicError
from repro.logic import ImplyMachine, ImplyProgram, build_gate
from repro.units import FJ, PS


class TestRegisterFile:
    def test_preallocated_registers(self):
        machine = ImplyMachine(registers=["a", "b"])
        assert machine.read_register("a") == 0

    def test_on_demand_allocation(self):
        machine = ImplyMachine()
        device = machine.device("fresh")
        assert device.as_bit() == 0
        assert machine.read_register("fresh") == 0

    def test_unknown_register_read_rejected(self):
        with pytest.raises(LogicError):
            ImplyMachine().read_register("ghost")

    def test_custom_device_factory(self):
        from repro.devices import IdealBipolarMemristor

        factory = lambda: IdealBipolarMemristor(r_on=2e3, r_off=2e6)
        machine = ImplyMachine(device_factory=factory)
        assert machine.device("a").r_on == 2e3


class TestExecution:
    def test_run_returns_outputs(self, machine):
        report = machine.run(build_gate("NOT"), {"a": 1})
        assert report.outputs == {"out": 0}
        assert report.program == "NOT"

    def test_missing_input_raises(self, machine):
        with pytest.raises(LogicError):
            machine.run(build_gate("NOT"), {})

    def test_state_persists_between_runs(self, machine):
        prog = ImplyProgram("SETUP", inputs=["x"], outputs={"v": "a"})
        prog.load("a", "x")
        machine.run(prog, {"x": 1})
        assert machine.read_register("a") == 1

    def test_run_validates_program(self, machine):
        bad = ImplyProgram("BAD", outputs={"out": "never"})
        with pytest.raises(LogicError):
            machine.run(bad, {})


class TestCostAccounting:
    def test_energy_is_steps_times_write_energy(self, machine):
        prog = build_gate("NAND")
        report = machine.run(prog, {"a": 1, "b": 1})
        assert report.steps == prog.step_count
        assert report.energy == pytest.approx(prog.step_count * 1 * FJ)

    def test_latency_is_steps_times_write_time(self, machine):
        prog = build_gate("XOR")
        report = machine.run(prog, {"a": 0, "b": 1})
        assert report.latency == pytest.approx(prog.step_count * 200 * PS)

    def test_custom_technology(self):
        slow = MemristorTechnology(
            name="slow", feature_size=10e-9, write_time=10e-9,
            write_energy=10e-15, cell_area=1e-15,
        )
        machine = ImplyMachine(technology=slow)
        report = machine.run(build_gate("NOT"), {"a": 0})
        assert report.latency == pytest.approx(3 * 10e-9)
        assert report.energy == pytest.approx(3 * 10e-15)


class TestSelfCheck:
    def test_run_and_check_passes_for_gates(self, machine):
        machine.run_and_check(build_gate("AND"), {"a": 1, "b": 1})

    def test_run_and_check_catches_divergence(self):
        """A machine whose electrical IMP misbehaves (V_SET too low to
        ever switch Q) must be caught by the self-check."""
        from repro.logic import ImplyVoltages

        # v_set below the device threshold: IMP can never set Q.
        broken = ImplyMachine(voltages=ImplyVoltages(v_cond=0.3, v_set=0.9))
        with pytest.raises(LogicError):
            broken.run_and_check(build_gate("NOT"), {"a": 0})
