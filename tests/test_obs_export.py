"""Exporter tests: JSONL, Prometheus text (golden), console summary."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    console_summary,
    export_jsonl,
    export_metrics_jsonl,
    export_prometheus,
    export_spans_jsonl,
    metric_records,
    prometheus_text,
    span_records,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span, Tracer


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("pulses_total", "IMPLY pulses").inc(42)
    reg.gauge("utilisation").set(0.75)
    h = reg.histogram("latency_seconds", "per-op latency", buckets=(1e-9, 1e-6))
    h.observe(5e-10)
    h.observe(5e-7)
    h.observe(2.0)
    ops = reg.counter("ops_total", "by kind")
    ops.labels(op="IMP").inc(3)
    ops.labels(op="FALSE").inc(1)
    return reg


def traced_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("root", workload="dna") as root:
        root.add_sim(energy=1.0, latency=0.5, steps=2)
        with tracer.span("child"):
            pass
    # Pin the wall-clock window so the export is deterministic.
    # (0.25 and 0.125 are exact binary fractions, so the JSON is stable.)
    root.start, root.end = 100.0, 100.25
    root.children[0].start, root.children[0].end = 100.0, 100.125
    return tracer


class TestJsonl:
    def test_writes_one_object_per_line(self):
        sink = io.StringIO()
        n = export_jsonl([{"a": 1}, {"b": [1, 2]}], sink)
        lines = sink.getvalue().splitlines()
        assert n == 2 and len(lines) == 2
        assert json.loads(lines[0]) == {"a": 1}

    def test_to_path(self, tmp_path):
        path = tmp_path / "out.jsonl"
        export_jsonl([{"a": 1}], str(path))
        assert json.loads(path.read_text()) == {"a": 1}

    def test_bad_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], str(tmp_path / "missing" / "out.jsonl"))
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], "")

    def test_bad_sink_type_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], 42)

    def test_non_dict_record_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl(["not a dict"], io.StringIO())

    def test_unserialisable_record_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": object()}], io.StringIO())


class TestSpanRecords:
    def test_flatten_with_paths(self):
        records = span_records(traced_tracer())
        assert [r["path"] for r in records] == ["root", "root/child"]
        assert [r["depth"] for r in records] == [0, 1]
        assert records[0]["sim_energy_j"] == 1.0
        assert "children" not in records[0]

    def test_golden_jsonl(self):
        sink = io.StringIO()
        export_spans_jsonl(traced_tracer(), sink)
        golden = (
            '{"attrs": {"workload": "dna"}, "depth": 0, "name": "root", '
            '"path": "root", "sim_energy_j": 1.0, "sim_latency_s": 0.5, '
            '"sim_steps": 2, "wall_time_s": 0.25}\n'
            '{"depth": 1, "name": "child", "path": "root/child", '
            '"sim_energy_j": 0.0, "sim_latency_s": 0.0, "sim_steps": 0, '
            '"wall_time_s": 0.125}\n'
        )
        assert sink.getvalue() == golden


class TestPrometheus:
    def test_golden_text(self):
        golden = "\n".join([
            "# HELP latency_seconds per-op latency",
            "# TYPE latency_seconds histogram",
            'latency_seconds_bucket{le="1e-09"} 1',
            'latency_seconds_bucket{le="1e-06"} 2',
            'latency_seconds_bucket{le="+Inf"} 3',
            "latency_seconds_sum 2.0000005005",
            "latency_seconds_count 3",
            "# HELP ops_total by kind",
            "# TYPE ops_total counter",
            'ops_total{op="FALSE"} 1.0',
            'ops_total{op="IMP"} 3.0',
            "# HELP pulses_total IMPLY pulses",
            "# TYPE pulses_total counter",
            "pulses_total 42.0",
            "# TYPE utilisation gauge",
            "utilisation 0.75",
        ]) + "\n"
        assert prometheus_text(small_registry()) == golden

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        export_prometheus(small_registry(), str(path))
        assert "pulses_total 42.0" in path.read_text()

    def test_bad_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            export_prometheus(small_registry(), str(tmp_path / "missing" / "x.prom"))

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_golden_summary_text(self):
        reg = MetricsRegistry()
        s = reg.summary("rt_seconds", "request wall time")
        s.observe(0.25)  # single observation: every quantile equals it
        s.labels(kernel="adder").observe(0.5)
        golden = "\n".join([
            "# HELP rt_seconds request wall time",
            "# TYPE rt_seconds summary",
            'rt_seconds{kernel="adder",quantile="0.5"} 0.5',
            'rt_seconds{kernel="adder",quantile="0.95"} 0.5',
            'rt_seconds{kernel="adder",quantile="0.99"} 0.5',
            'rt_seconds_sum{kernel="adder"} 0.5',
            'rt_seconds_count{kernel="adder"} 1',
        ]) + "\n"
        assert prometheus_text(reg) == golden

    def test_unlabelled_summary_renders_quantile_series(self):
        reg = MetricsRegistry()
        reg.summary("rt").observe(0.25)
        text = prometheus_text(reg)
        assert 'rt{quantile="0.5"} 0.25' in text
        assert "rt_sum 0.25" in text
        assert "rt_count 1" in text

    def test_empty_summary_skips_quantile_series(self):
        reg = MetricsRegistry()
        reg.summary("rt", "never observed")
        text = prometheus_text(reg)
        assert "quantile" not in text
        assert "rt_count 0" in text


class TestPrometheusEscaping:
    """ISSUE 6 satellite: hostile label values must stay parseable."""

    def test_quotes_backslashes_newlines_escaped(self):
        reg = MetricsRegistry()
        hostile = 'say "hi"\\now\nplease'
        reg.counter("evil_total").labels(kernel=hostile).inc()
        text = prometheus_text(reg)
        assert (
            'evil_total{kernel="say \\"hi\\"\\\\now\\nplease"} 1.0' in text
        )
        # No physical line may be broken by a raw newline in a value.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0

    def test_each_hostile_byte_alone(self):
        cases = {
            'a"b': 'a\\"b',
            "a\\b": "a\\\\b",
            "a\nb": "a\\nb",
        }
        for raw, escaped in cases.items():
            reg = MetricsRegistry()
            reg.gauge("g").labels(v=raw).set(1.0)
            assert f'g{{v="{escaped}"}} 1.0' in prometheus_text(reg)

    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", "line one\nline two \\ backslash")
        text = prometheus_text(reg)
        assert "# HELP c line one\\nline two \\\\ backslash" in text


class TestMetricRecords:
    def test_flattens_every_instance(self):
        records = metric_records(small_registry())
        by_key = {(r["metric"], tuple(sorted(r["labels"].items()))): r
                  for r in records}
        assert by_key[("pulses_total", ())]["value"] == 42.0
        assert by_key[("pulses_total", ())]["kind"] == "counter"
        assert by_key[("ops_total", (("op", "IMP"),))]["value"] == 3.0
        hist = by_key[("latency_seconds", ())]
        assert hist["count"] == 3
        assert hist["buckets"][-1] == ["+Inf", 3]  # inf stays strict JSON

    def test_summary_record_payload(self):
        reg = MetricsRegistry()
        reg.summary("rt", "wall").observe(0.25)
        (record,) = metric_records(reg)
        assert record["kind"] == "summary"
        assert record["count"] == 1
        assert record["quantiles"] == {"0.5": 0.25, "0.95": 0.25, "0.99": 0.25}

    def test_golden_jsonl(self):
        reg = MetricsRegistry()
        reg.counter("c", "things").inc(2)
        reg.gauge("g").labels(op="IMP").set(0.5)
        sink = io.StringIO()
        n = export_metrics_jsonl(reg, sink)
        assert n == 2
        golden = (
            '{"help": "things", "kind": "counter", "labels": {}, '
            '"metric": "c", "value": 2.0}\n'
            '{"kind": "gauge", "labels": {"op": "IMP"}, '
            '"metric": "g", "value": 0.5}\n'
        )
        assert sink.getvalue() == golden

    def test_nonfinite_gauge_survives_strict_json(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(float("inf"))
        sink = io.StringIO()
        export_metrics_jsonl(reg, sink)
        assert json.loads(sink.getvalue())["value"] == "+Inf"


class TestConsoleSummary:
    def test_contains_every_metric(self):
        text = console_summary(small_registry())
        for name in ("pulses_total", "utilisation", "latency_seconds",
                     "ops_total{op=IMP}"):
            assert name in text

    def test_empty_registry(self):
        assert "empty" in console_summary(MetricsRegistry())

    def test_summary_row_shows_quantiles(self):
        reg = MetricsRegistry()
        reg.summary("rt").observe(0.25)
        text = console_summary(reg)
        assert "count=1" in text
        assert "p50=0.25" in text and "p99=0.25" in text
