"""Exporter tests: JSONL, Prometheus text (golden), console summary."""

import io
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.export import (
    console_summary,
    export_jsonl,
    export_prometheus,
    export_spans_jsonl,
    prometheus_text,
    span_records,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span, Tracer


def small_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("pulses_total", "IMPLY pulses").inc(42)
    reg.gauge("utilisation").set(0.75)
    h = reg.histogram("latency_seconds", "per-op latency", buckets=(1e-9, 1e-6))
    h.observe(5e-10)
    h.observe(5e-7)
    h.observe(2.0)
    ops = reg.counter("ops_total", "by kind")
    ops.labels(op="IMP").inc(3)
    ops.labels(op="FALSE").inc(1)
    return reg


def traced_tracer() -> Tracer:
    tracer = Tracer()
    tracer.enable()
    with tracer.span("root", workload="dna") as root:
        root.add_sim(energy=1.0, latency=0.5, steps=2)
        with tracer.span("child"):
            pass
    # Pin the wall-clock window so the export is deterministic.
    # (0.25 and 0.125 are exact binary fractions, so the JSON is stable.)
    root.start, root.end = 100.0, 100.25
    root.children[0].start, root.children[0].end = 100.0, 100.125
    return tracer


class TestJsonl:
    def test_writes_one_object_per_line(self):
        sink = io.StringIO()
        n = export_jsonl([{"a": 1}, {"b": [1, 2]}], sink)
        lines = sink.getvalue().splitlines()
        assert n == 2 and len(lines) == 2
        assert json.loads(lines[0]) == {"a": 1}

    def test_to_path(self, tmp_path):
        path = tmp_path / "out.jsonl"
        export_jsonl([{"a": 1}], str(path))
        assert json.loads(path.read_text()) == {"a": 1}

    def test_bad_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], str(tmp_path / "missing" / "out.jsonl"))
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], "")

    def test_bad_sink_type_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": 1}], 42)

    def test_non_dict_record_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl(["not a dict"], io.StringIO())

    def test_unserialisable_record_raises(self):
        with pytest.raises(ObservabilityError):
            export_jsonl([{"a": object()}], io.StringIO())


class TestSpanRecords:
    def test_flatten_with_paths(self):
        records = span_records(traced_tracer())
        assert [r["path"] for r in records] == ["root", "root/child"]
        assert [r["depth"] for r in records] == [0, 1]
        assert records[0]["sim_energy_j"] == 1.0
        assert "children" not in records[0]

    def test_golden_jsonl(self):
        sink = io.StringIO()
        export_spans_jsonl(traced_tracer(), sink)
        golden = (
            '{"attrs": {"workload": "dna"}, "depth": 0, "name": "root", '
            '"path": "root", "sim_energy_j": 1.0, "sim_latency_s": 0.5, '
            '"sim_steps": 2, "wall_time_s": 0.25}\n'
            '{"depth": 1, "name": "child", "path": "root/child", '
            '"sim_energy_j": 0.0, "sim_latency_s": 0.0, "sim_steps": 0, '
            '"wall_time_s": 0.125}\n'
        )
        assert sink.getvalue() == golden


class TestPrometheus:
    def test_golden_text(self):
        golden = "\n".join([
            "# HELP latency_seconds per-op latency",
            "# TYPE latency_seconds histogram",
            'latency_seconds_bucket{le="1e-09"} 1',
            'latency_seconds_bucket{le="1e-06"} 2',
            'latency_seconds_bucket{le="+Inf"} 3',
            "latency_seconds_sum 2.0000005005",
            "latency_seconds_count 3",
            "# HELP ops_total by kind",
            "# TYPE ops_total counter",
            'ops_total{op="FALSE"} 1.0',
            'ops_total{op="IMP"} 3.0',
            "# HELP pulses_total IMPLY pulses",
            "# TYPE pulses_total counter",
            "pulses_total 42.0",
            "# TYPE utilisation gauge",
            "utilisation 0.75",
        ]) + "\n"
        assert prometheus_text(small_registry()) == golden

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        export_prometheus(small_registry(), str(path))
        assert "pulses_total 42.0" in path.read_text()

    def test_bad_path_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            export_prometheus(small_registry(), str(tmp_path / "missing" / "x.prom"))

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestConsoleSummary:
    def test_contains_every_metric(self):
        text = console_summary(small_registry())
        for name in ("pulses_total", "utilisation", "latency_seconds",
                     "ops_total{op=IMP}"):
            assert name in text

    def test_empty_registry(self):
        assert "empty" in console_summary(MetricsRegistry())
