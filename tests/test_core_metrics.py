"""Tests for the Table 2 metrics and improvement factors."""

import pytest

from repro.core import (
    MachineReport,
    MetricSet,
    improvement,
    metrics_from_report,
)
from repro.errors import ArchitectureError
from repro.units import MM2


def make_report(**overrides):
    defaults = dict(
        machine="m",
        workload="w",
        operations=1000,
        parallel_units=10,
        rounds=100,
        time=1e-3,
        energy=1e-6,
        area=2 * MM2,
    )
    defaults.update(overrides)
    return MachineReport(**defaults)


class TestMachineReport:
    def test_derived_quantities(self):
        report = make_report()
        assert report.energy_per_op == pytest.approx(1e-9)
        assert report.time_per_op == pytest.approx(1e-6)
        assert report.throughput == pytest.approx(1e6)

    def test_breakdown_must_sum(self):
        with pytest.raises(ArchitectureError):
            make_report(energy_breakdown={"dynamic": 1.0})

    def test_consistent_breakdown_accepted(self):
        report = make_report(
            energy_breakdown={"dynamic": 0.4e-6, "cache_static": 0.6e-6}
        )
        assert report.dominant_energy_component() == "cache_static"

    def test_positive_quantities_enforced(self):
        with pytest.raises(ArchitectureError):
            make_report(time=0.0)
        with pytest.raises(ArchitectureError):
            make_report(energy=-1.0)

    def test_summary_mentions_machine(self):
        assert "m on w" in make_report().summary()


class TestMetricSet:
    def test_energy_delay_per_op(self):
        metrics = metrics_from_report(make_report())
        assert metrics.energy_delay_per_op == pytest.approx(1e-6 * 1e-3 / 1000)

    def test_computing_efficiency(self):
        metrics = metrics_from_report(make_report())
        assert metrics.computing_efficiency == pytest.approx(1000 / 1e-6)

    def test_performance_per_area_in_mm2(self):
        metrics = metrics_from_report(make_report())
        # (1000 ops / 1e-3 s) / 2 mm^2 = 5e5 ops/s/mm^2
        assert metrics.performance_per_area == pytest.approx(5e5)

    def test_as_dict_keys(self):
        metrics = metrics_from_report(make_report())
        assert set(metrics.as_dict()) == {
            "energy_delay_per_op",
            "computing_efficiency",
            "performance_per_area",
        }


class TestImprovement:
    def test_directionality(self):
        conv = metrics_from_report(make_report(machine="conv"))
        cim = metrics_from_report(
            make_report(machine="cim", energy=1e-9, time=1e-4, area=0.2 * MM2)
        )
        factors = improvement(conv, cim)
        # 1000x less energy, 10x less time -> EDP 1e4, efficiency 1e3.
        assert factors.energy_delay == pytest.approx(1e4)
        assert factors.computing_efficiency == pytest.approx(1e3)
        assert factors.performance_per_area == pytest.approx(100.0)
        assert factors.all_improvements()

    def test_workload_mismatch_rejected(self):
        a = metrics_from_report(make_report(workload="w1"))
        b = metrics_from_report(make_report(workload="w2"))
        with pytest.raises(ArchitectureError):
            improvement(a, b)

    def test_regression_detected(self):
        conv = metrics_from_report(make_report())
        worse = metrics_from_report(make_report(energy=1e-3))
        factors = improvement(conv, worse)
        assert not factors.all_improvements()
