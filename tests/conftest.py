"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.devices import ComplementaryResistiveSwitch, IdealBipolarMemristor
from repro.logic import ImplyMachine


@pytest.fixture
def device():
    """A fresh ideal bipolar memristor in HRS."""
    return IdealBipolarMemristor()


@pytest.fixture
def crs():
    """A fresh CRS cell in state '0'."""
    return ComplementaryResistiveSwitch()


@pytest.fixture
def machine():
    """A fresh electrical IMPLY machine."""
    return ImplyMachine()


def all_bit_pairs():
    """All (p, q) bit pairs, for exhaustive gate checks."""
    return [(p, q) for p in (0, 1) for q in (0, 1)]
