"""The offload planner (:mod:`repro.analysis.planner`) and its CLI."""

from __future__ import annotations

import io
import json

import pytest

from repro import api
from repro.analysis.planner import (
    AUTO_BITPLANE_WORDS,
    Plan,
    PlacementChoice,
    TraceEntry,
    paper_trace,
    plan,
    plan_metrics,
    plan_request,
    read_trace,
    suggest_backend,
)
from repro.errors import PlannerError
from repro.spec import TABLE1


class TestTraceEntry:
    def test_validation(self):
        with pytest.raises(PlannerError):
            TraceEntry(kernel="")
        with pytest.raises(PlannerError):
            TraceEntry(kernel="adder", width=0)
        with pytest.raises(PlannerError):
            TraceEntry(kernel="adder", words=0)
        with pytest.raises(PlannerError):
            TraceEntry(kernel="adder", hit_ratio=1.5)

    def test_as_dict_round_trips_through_read_trace(self):
        entry = TraceEntry(kernel="adder", width=16, words=100, hit_ratio=0.9)
        line = json.dumps(entry.as_dict())
        assert read_trace([line]) == [entry]


class TestReadTrace:
    def test_blank_lines_skipped(self):
        text = '\n{"kernel": "adder"}\n\n'
        assert read_trace(io.StringIO(text)) == [TraceEntry(kernel="adder")]

    def test_errors_name_the_line(self):
        with pytest.raises(PlannerError, match="line 2"):
            read_trace(['{"kernel": "adder"}', "not json"])
        with pytest.raises(PlannerError, match="unknown fields"):
            read_trace(['{"kernel": "adder", "bogus": 1}'])
        with pytest.raises(PlannerError, match="missing 'kernel'"):
            read_trace(['{"words": 5}'])
        with pytest.raises(PlannerError, match="expected an object"):
            read_trace(["[1, 2]"])


class TestPaperTrace:
    def test_matches_table1_operation_counts(self):
        entries = {e.kernel: e for e in paper_trace(TABLE1)}
        w = TABLE1.workloads
        dna_ops = 4 * (w.dna_coverage * w.dna_reference_bases
                       // w.dna_short_read_len)
        assert entries["comparator"].words == dna_ops
        assert entries["comparator"].hit_ratio == w.dna_hit_ratio
        assert entries["adder"].words == w.math_additions
        assert entries["adder"].width == TABLE1.adder.width
        assert entries["adder"].hit_ratio == w.math_hit_ratio


class TestPlan:
    def test_paper_plan_places_both_kernels_on_cim(self):
        """The acceptance criterion: per-kernel CIM/CPU placement with
        predicted energy-delay and a crossover point."""
        result = plan()
        assert result.spec_digest == TABLE1.digest
        assert {c.kernel for c in result.choices} == {"comparator", "adder"}
        for choice in result.choices:
            # The paper's headline: CIM wins both applications.
            assert choice.placement == "cim"
            assert choice.cim_energy_delay < choice.cpu_energy_delay
            assert choice.crossover_words == 1
            assert choice.cim_energy > 0 and choice.cpu_energy > 0
            assert choice.backend == "functional_bitplane"  # huge batches

    def test_choice_lookup(self):
        result = plan()
        assert result.choice("ADDER").kernel == "adder"
        with pytest.raises(PlannerError):
            result.choice("matmul")

    def test_empty_trace_rejected(self):
        with pytest.raises(PlannerError):
            plan([])

    def test_crossover_in_the_cpu_favoured_regime(self):
        """With catastrophically slow/hot memristors, small batches stay
        on the CPU and the crossover moves out; the bisection must agree
        with direct evaluation on both sides."""
        hot = TABLE1.derive({"memristor.write_energy": 1e-6,
                             "memristor.write_time": 1e-9})
        choice = plan_request("word-compare", 32, 4, spec=hot)
        assert choice.placement == "cpu"
        crossover = choice.crossover_words
        assert crossover is not None and crossover > 4

        def energy_delay_gap(words):
            c = plan_request("word-compare", 32, words, spec=hot)
            return c.cim_energy_delay - c.cpu_energy_delay

        assert energy_delay_gap(crossover) <= 0       # CIM wins at crossover
        assert energy_delay_gap(crossover - 1) > 0    # ...and not just before

    def test_plan_metrics_flatten(self):
        metrics = plan_metrics(plan())
        assert metrics["plan.adder.cim_wins"] == 1.0
        assert metrics["plan.adder.crossover_words"] == 1.0
        assert metrics["plan.comparator.cim_energy_delay"] > 0

    def test_suggest_backend_thresholds(self):
        assert suggest_backend("cpu", 10**9) == "functional"
        assert suggest_backend("cim", AUTO_BITPLANE_WORDS - 1) == "functional"
        assert (suggest_backend("cim", AUTO_BITPLANE_WORDS)
                == "functional_bitplane")


class TestApiAndCli:
    def test_api_plan(self):
        result = api.plan()
        assert isinstance(result, Plan)
        assert isinstance(result.choice("adder"), PlacementChoice)
        derived = api.plan(overrides={"workloads.math_additions": 7})
        assert derived.choice("adder").words == 7

    def test_cli_plan_table(self, capsys):
        from repro.__main__ import main

        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "comparator" in out and "adder" in out
        assert "CIM" in out and "Crossover" in out

    def test_cli_plan_json_and_trace_file(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"kernel": "adder", "width": 8, "words": 3}\n')
        assert main(["plan", "--trace", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (choice,) = payload["choices"]
        assert choice["kernel"] == "adder"
        assert choice["words"] == 3
        assert choice["placement"] in ("cim", "cpu")

    def test_cli_plan_rejects_bad_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"kernel": "adder", "nope": 1}\n')
        assert main(["plan", "--trace", str(trace)]) == 2
