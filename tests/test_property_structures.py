"""Second round of property-based tests: memories, CAM, analog VMM,
scheduler and wear levelling (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analog import AnalogCrossbar
from repro.compiler import random_network, schedule_network, critical_path_pulses
from repro.crossbar import CrossbarMemory
from repro.logic import WILDCARD, MemristiveCAM
from repro.reliability import WearLevelledMemory

bits = st.integers(min_value=0, max_value=1)


class TestCrossbarMemoryProperties:
    @given(
        cell_kind=st.sampled_from(["1R", "CRS"]),
        operations=st.lists(
            st.tuples(st.integers(0, 7), st.integers(0, 255)),
            min_size=1, max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_write_read_sequences_round_trip(self, cell_kind, operations):
        """Any interleaving of word writes and reads behaves like a
        plain array — including CRS destructive-read healing."""
        memory = CrossbarMemory(8, 8, cell_kind)
        shadow = {}
        for address, value in operations:
            memory.write_int(address, value)
            shadow[address] = value
            probe = min(shadow)
            assert memory.read_int(probe) == shadow[probe]
        for address, value in shadow.items():
            assert memory.read_int(address) == value

    @given(values=st.lists(st.integers(0, 255), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_reads_are_idempotent(self, values):
        memory = CrossbarMemory(8, 8, "CRS")
        for address, value in enumerate(values):
            memory.write_int(address, value)
        first = [memory.read_int(a) for a in range(len(values))]
        second = [memory.read_int(a) for a in range(len(values))]
        assert first == second == values


class TestCAMProperties:
    @given(
        keys=st.lists(
            st.lists(bits, min_size=4, max_size=4), min_size=1, max_size=8
        ),
        query=st.lists(bits, min_size=4, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_search_matches_linear_scan(self, keys, query):
        cam = MemristiveCAM(rows=len(keys), width=4)
        for row, key in enumerate(keys):
            cam.store(row, key)
        expected = [row for row, key in enumerate(keys) if key == query]
        assert cam.search(query) == expected

    @given(
        key=st.lists(bits, min_size=5, max_size=5),
        mask=st.lists(st.booleans(), min_size=5, max_size=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_wildcards_match_any_value(self, key, mask):
        stored = [WILDCARD if m else k for k, m in zip(key, mask)]
        cam = MemristiveCAM(rows=1, width=5)
        cam.store(0, stored)
        assert cam.search(key) == [0]


class TestAnalogVMMProperties:
    weights = st.lists(
        st.lists(st.floats(-10, 10), min_size=3, max_size=3),
        min_size=4, max_size=4,
    )
    inputs = st.lists(st.floats(0, 1), min_size=4, max_size=4)

    @given(w=weights, x=inputs)
    @settings(max_examples=60, deadline=None)
    def test_ideal_crossbar_equals_matmul(self, w, x):
        w = np.array(w)
        x = np.array(x)
        crossbar = AnalogCrossbar(4, 3)
        crossbar.program(w)
        assert np.allclose(crossbar.matvec(x), x @ w, atol=1e-9)

    @given(
        w=weights,
        x=inputs,
        scale=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_linearity_in_inputs(self, w, x, scale):
        crossbar = AnalogCrossbar(4, 3)
        crossbar.program(np.array(w))
        base = crossbar.matvec(np.array(x))
        scaled = crossbar.matvec(np.array(x) * scale)
        assert np.allclose(scaled, base * scale, atol=1e-9)


class TestSchedulerProperties:
    @given(
        seed=st.integers(0, 100),
        lanes=st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants_on_random_networks(self, seed, lanes):
        network = random_network(inputs=4, gates=15, outputs=2, seed=seed)
        plan = schedule_network(network, lanes)
        # Every gate exactly once.
        scheduled = sorted(g.name for s in plan.slots for g in s.gates)
        assert scheduled == sorted(n.name for n in network.nodes)
        # Lane bound respected; latency sandwiched between bounds.
        assert all(len(s.gates) <= lanes for s in plan.slots)
        assert plan.latency_pulses >= critical_path_pulses(network) if lanes >= 15 else True
        assert plan.latency_pulses <= plan.serial_latency_pulses
        assert plan.speedup >= 1.0

    @given(seed=st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_more_lanes_never_slower(self, seed):
        network = random_network(inputs=4, gates=12, outputs=2, seed=seed)
        latencies = [
            schedule_network(network, lanes).latency_pulses
            for lanes in (1, 2, 4, 8)
        ]
        assert latencies == sorted(latencies, reverse=True)


class TestWearLevellingProperties:
    @given(
        operations=st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 15)),
            min_size=1, max_size=60,
        ),
        gap_interval=st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_mapping_never_loses_data(self, operations, gap_interval):
        memory = WearLevelledMemory(6, 4, gap_interval=gap_interval)
        shadow = {}
        for address, value in operations:
            memory.write_int(address, value)
            shadow[address] = value
        for address, value in shadow.items():
            assert memory.read_int(address) == value

    @given(gap_interval=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_mapping_always_injective(self, gap_interval):
        memory = WearLevelledMemory(5, 4, gap_interval=gap_interval)
        for step in range(60):
            memory.write_int(step % 5, step % 16)
            physical = {memory._map(l) for l in range(5)}
            assert len(physical) == 5
