"""Bench-harness tests plus the instrumentation-neutrality integration
tests: tracing must not perturb simulated results, and must stay cheap."""

import json
import time

import pytest

from repro.core import table2
from repro.errors import ObservabilityError
from repro.obs.bench import (
    BenchRecord,
    artifact_path,
    load_artifact,
    measure,
    run_bench,
    write_artifact,
)
from repro.obs.registry import get_registry
from repro.obs.tracing import get_tracer


@pytest.fixture(autouse=True)
def clean_global_tracer():
    tracer = get_tracer()
    was = tracer.enabled
    yield
    tracer.enabled = was
    tracer.reset()


class TestMeasure:
    def test_returns_value_and_wall_time(self):
        record = measure("demo", lambda: sum(range(1000)))
        assert record.value == sum(range(1000))
        assert record.wall_time_s > 0
        assert record.name == "demo"

    def test_restores_tracer_state(self):
        tracer = get_tracer()
        tracer.disable()
        measure("demo", lambda: None)
        assert tracer.enabled is False

    def test_captures_sim_costs(self):
        from repro.sim.machine import FunctionalCIM

        def run():
            machine = FunctionalCIM(words=4, width=4)
            machine.store_many([1, 2, 3, 4])
            machine.add_arrays([1, 2], [3, 4])
            return machine

        record = measure("functional", run)
        assert record.sim_energy_j > 0
        assert record.sim_latency_s > 0
        assert record.sim_steps > 0

    def test_captures_metric_deltas(self):
        pulses = get_registry().counter("imply_pulses_total")
        before = pulses.value
        from repro.logic.adders import ripple_adder_program
        from repro.logic.sequencer import ImplyMachine

        program = ripple_adder_program(4)
        record = measure(
            "adder",
            lambda: ImplyMachine().run(program, {
                **{f"a{i}": 0 for i in range(4)},
                **{f"b{i}": 1 for i in range(4)},
            }),
        )
        assert pulses.value > before
        assert record.metrics.get("imply_pulses_total") == pulses.value - before

    def test_non_callable_rejected(self):
        with pytest.raises(ObservabilityError):
            measure("demo", 42)

    def test_exception_propagates(self):
        with pytest.raises(RuntimeError):
            measure("demo", lambda: (_ for _ in ()).throw(RuntimeError("x")))


class TestArtifacts:
    def test_round_trip(self, tmp_path):
        record = measure("smoke", lambda: 1)
        path = write_artifact(str(tmp_path), "bench_smoke", [record], smoke=True)
        assert path.endswith("BENCH_smoke.json")
        payload = load_artifact(path)
        assert payload["bench"] == "bench_smoke"
        assert payload["smoke"] is True
        assert payload["schema"] == "repro-bench/1"
        entry = payload["entries"][0]
        for key in ("wall_time_s", "sim_energy_j", "sim_latency_s", "sim_steps"):
            assert key in entry

    def test_run_bench_writes_file(self, tmp_path):
        record = run_bench("quick", lambda: 7, out_dir=str(tmp_path))
        assert record.value == 7
        payload = load_artifact(str(tmp_path / "BENCH_quick.json"))
        assert payload["entries"][0]["name"] == "quick"

    def test_missing_dir_rejected(self, tmp_path):
        record = BenchRecord("x", 0.0, 0.0, 0.0, 0)
        with pytest.raises(ObservabilityError):
            write_artifact(str(tmp_path / "missing"), "x", [record])

    def test_bad_bench_name_rejected(self, tmp_path):
        for bad in ("", "a/b", ".."):
            with pytest.raises(ObservabilityError):
                artifact_path(str(tmp_path), bad)

    def test_malformed_artifact_rejected(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("not json")
        with pytest.raises(ObservabilityError):
            load_artifact(str(bad))
        bad.write_text(json.dumps({"schema": "repro-bench/1"}))
        with pytest.raises(ObservabilityError):
            load_artifact(str(bad))


class TestInstrumentationNeutrality:
    """The acceptance gate: tracing must not change any simulated number."""

    def test_table2_identical_under_tracing(self):
        tracer = get_tracer()
        tracer.disable()
        baseline = table2()
        tracer.enable()
        with tracer.span("integration"):
            traced = table2()
        tracer.disable()

        assert set(baseline.metrics) == set(traced.metrics)
        for cell in baseline.metrics:
            base = baseline.metrics[cell].as_dict()
            trac = traced.metrics[cell].as_dict()
            for name, value in base.items():
                # Bit-identical, not approx: instrumentation only observes.
                assert trac[name] == value, (cell, name)
        for workload in baseline.improvements:
            assert (baseline.improvements[workload].energy_delay
                    == traced.improvements[workload].energy_delay)

    def test_functional_add_identical_under_tracing(self):
        from repro.sim.machine import FunctionalCIM

        def run():
            machine = FunctionalCIM(words=4, width=8)
            result = machine.add_arrays([1, 2, 250, 7], [9, 8, 250, 3])
            return result.values, machine.trace.total_energy

        tracer = get_tracer()
        tracer.disable()
        base_values, base_energy = run()
        tracer.enable()
        with tracer.span("traced-add"):
            traced_values, traced_energy = run()
        assert traced_values == base_values
        assert traced_energy == base_energy


@pytest.mark.slow
class TestTracingOverhead:
    def test_traced_adder_within_budget(self):
        """ImplyMachine 32-bit add under tracing must stay close to the
        untraced speed (acceptance budget is 10%; asserted with CI slack)."""
        from repro.logic.adders import ripple_adder_program
        from repro.logic.sequencer import ImplyMachine

        program = ripple_adder_program(32)
        inputs = {}
        for i in range(32):
            inputs[f"a{i}"] = (0xDEADBEEF >> i) & 1
            inputs[f"b{i}"] = (0x12345678 >> i) & 1

        def run_once():
            ImplyMachine().run(program, inputs)

        def best_of(n):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                run_once()
                best = min(best, time.perf_counter() - t0)
            return best

        tracer = get_tracer()
        tracer.disable()
        run_once()  # warm caches
        untraced = best_of(5)
        tracer.enable()
        with tracer.span("hot-loop"):
            traced = best_of(5)
        tracer.disable()
        # Generous 1.5x bound so shared-CI noise can't flake the suite;
        # the measured overhead is ~1-2%.
        assert traced <= untraced * 1.5, (traced, untraced)
