"""Cross-layer integration tests: the full paper pipeline end-to-end."""

import pytest

from repro.apps.dna import (
    ReadMapper,
    SortedKmerIndex,
    generate_reads,
    measure_cache_hit_ratio,
    measured_workload,
    random_genome,
)
from repro.core import (
    cim_dna_machine,
    conventional_dna_machine,
    improvement,
    metrics_from_report,
    table2,
)
from repro.sim import FunctionalCIM


class TestDNAEndToEnd:
    """Synthetic genome -> sorted index -> mapper -> measured workload
    -> architecture evaluation: the whole healthcare story on real data."""

    @pytest.fixture(scope="class")
    def evaluated(self):
        genome = random_genome(30000, seed=11)
        reads = generate_reads(genome, coverage=2, read_length=64,
                               error_rate=0.005, seed=12)
        index = SortedKmerIndex(genome, k=16)
        mapper = ReadMapper(index)
        stats = mapper.map_all(reads)
        hit_ratio = measure_cache_hit_ratio(index)
        workload = measured_workload(stats, hit_ratio)
        conv = conventional_dna_machine().evaluate(workload)
        cim = cim_dna_machine("paper").evaluate(workload)
        return stats, hit_ratio, workload, conv, cim

    def test_pipeline_maps_accurately(self, evaluated):
        stats, *_ = evaluated
        assert stats.accuracy > 0.9

    def test_measured_hit_ratio_supports_table1_assumption(self, evaluated):
        _, hit_ratio, *_ = evaluated
        assert 0.25 < hit_ratio < 0.8

    def test_cim_wins_on_measured_workload(self, evaluated):
        """The paper's conclusion must hold for *measured* operation
        counts and hit ratios, not only for Table 1's assumed ones."""
        *_, conv, cim = evaluated
        factors = improvement(metrics_from_report(conv), metrics_from_report(cim))
        assert factors.energy_delay > 10
        assert factors.computing_efficiency > 10

    def test_measured_workload_is_memory_bound(self, evaluated):
        *_, conv, _ = evaluated
        assert conv.dominant_energy_component() == "cache_static"


class TestFunctionalVsAnalyticalConsistency:
    def test_comparator_energy_scale_consistent(self):
        """The functional machine's per-comparison logic energy and the
        Table 1 comparator energy agree within an order of magnitude
        (the functional word comparator is wider and unoptimised)."""
        from repro.logic import ComparatorCost

        machine = FunctionalCIM(words=4, width=4)
        machine.store_many([3, 5, 3, 7])
        machine.compare_all(3)
        logic = machine.trace.by_kind()["logic"]
        per_comparison = logic[1] / 4
        assert per_comparison < 100 * ComparatorCost().dynamic_energy

    def test_add_latency_matches_step_count(self):
        from repro.devices import MEMRISTOR_5NM
        from repro.logic import ripple_adder_program

        machine = FunctionalCIM(words=2, width=4, lanes=1)
        machine.add_arrays([1, 2], [3, 4])
        steps = ripple_adder_program(4).step_count
        logic = machine.trace.by_kind()["logic"]
        assert logic[2] == pytest.approx(2 * steps * MEMRISTOR_5NM.write_time)


class TestInMemoryDatabaseScenario:
    """CAM + crossbar memory together: the 'in-memory database' class of
    applications from Section II.B."""

    def test_associative_search_consistency(self):
        from repro.logic import MemristiveCAM

        machine = FunctionalCIM(words=8, width=8)
        values = [12, 7, 12, 99, 0, 12, 55, 254]
        machine.store_many(values)
        cam = MemristiveCAM(rows=8, width=8)
        for row, value in enumerate(values):
            cam.store(row, [(value >> i) & 1 for i in range(8)])
        query_bits = [(12 >> i) & 1 for i in range(8)]
        assert cam.search(query_bits) == machine.compare_all(12).values


class TestTable2Stability:
    def test_table2_is_deterministic(self):
        a = table2("paper")
        b = table2("paper")
        for cell in a.metrics:
            assert a.metrics[cell].as_dict() == b.metrics[cell].as_dict()

    def test_reports_and_metrics_consistent(self):
        result = table2("paper")
        for cell, report in result.reports.items():
            metrics = result.metrics[cell]
            assert metrics.computing_efficiency == pytest.approx(
                report.operations / report.energy
            )
