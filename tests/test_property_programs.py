"""Property test: random valid IMPLY programs behave identically on the
functional semantics, the electrical machine, and the in-row crossbar
execution — the strongest cross-layer equivalence in the suite."""

from hypothesis import given, settings, strategies as st

from repro.crossbar import CrossbarArray
from repro.logic import ImplyMachine, ImplyProgram
from repro.sim import RowRegisterFile

bits = st.integers(min_value=0, max_value=1)


@st.composite
def random_program(draw):
    """A random valid straight-line program over <= 6 registers.

    Construction mirrors how real programs look: load the inputs, then
    a mix of FALSE and IMP steps over initialised registers, with the
    last-written register as the output.
    """
    n_inputs = draw(st.integers(min_value=1, max_value=3))
    program = ImplyProgram(
        "FUZZ",
        inputs=[f"x{i}" for i in range(n_inputs)],
        outputs={},
    )
    registers = []
    for i in range(n_inputs):
        register = f"r{i}"
        program.load(register, f"x{i}")
        registers.append(register)

    steps = draw(st.integers(min_value=1, max_value=12))
    last_written = registers[0]
    for step in range(steps):
        if len(registers) < 6 and draw(st.booleans()):
            register = f"r{len(registers)}"
            program.false(register)
            registers.append(register)
            last_written = register
        else:
            p = registers[draw(st.integers(0, len(registers) - 1))]
            q = registers[draw(st.integers(0, len(registers) - 1))]
            if p == q:
                program.false(q)
            else:
                program.imp(p, q)
            last_written = q
    program.outputs["out"] = last_written
    program.validate()
    return program


class TestCrossLayerEquivalence:
    @given(program=random_program(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_functional_equals_electrical(self, program, data):
        inputs = {
            name: data.draw(bits, label=name) for name in program.inputs
        }
        machine = ImplyMachine()
        machine.run_and_check(program, inputs)   # raises on divergence

    @given(program=random_program(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_functional_equals_in_row_execution(self, program, data):
        inputs = {
            name: data.draw(bits, label=name) for name in program.inputs
        }
        array = CrossbarArray(3, 8)
        array.write_pattern([[1, 0, 1, 0, 1, 0, 1, 0],
                             [0] * 8,
                             [0, 1, 1, 0, 0, 1, 1, 0]])
        row_file = RowRegisterFile(array, row=1)
        report = row_file.run(program, inputs)
        expected = program.run_functional(inputs)
        assert report.outputs == expected
        # Storage isolation held (run() itself asserts it; double-check
        # one data row here for explicitness).
        assert array.read_pattern()[0] == [1, 0, 1, 0, 1, 0, 1, 0]
