"""Property-based tests for device models (hypothesis)."""

import math

from hypothesis import given, settings, strategies as st

from repro.devices import (
    ComplementaryResistiveSwitch,
    ECMMemristor,
    IdealBipolarMemristor,
    LinearIonDriftMemristor,
    SwitchingThresholds,
    VCMMemristor,
    VTEAMMemristor,
)

states = st.floats(min_value=0.0, max_value=1.0)
voltages = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
durations = st.floats(min_value=0.0, max_value=1e-6, allow_nan=False)


class TestStateInvariants:
    @given(x=states, v=voltages, t=durations)
    def test_ideal_state_stays_in_unit_interval(self, x, v, t):
        device = IdealBipolarMemristor(x=x)
        device.apply_voltage(v, t)
        assert 0.0 <= device.x <= 1.0

    @given(x=states, v=voltages, t=durations)
    def test_vteam_state_stays_in_unit_interval(self, x, v, t):
        device = VTEAMMemristor(x=x)
        device.apply_voltage(v, t, steps=5)
        assert 0.0 <= device.x <= 1.0

    @given(x=states, v=voltages, t=durations)
    def test_ecm_state_stays_in_unit_interval(self, x, v, t):
        device = ECMMemristor(x=x)
        device.apply_voltage(v, t, steps=5)
        assert 0.0 <= device.x <= 1.0

    @given(x=states, v=voltages, t=durations)
    def test_vcm_state_stays_in_unit_interval(self, x, v, t):
        device = VCMMemristor(x=x)
        device.apply_voltage(v, t, steps=5)
        assert 0.0 <= device.x <= 1.0


class TestResistanceInvariants:
    @given(x=states)
    def test_resistance_between_bounds(self, x):
        device = IdealBipolarMemristor(x=x)
        assert device.r_on <= device.resistance() <= device.r_off

    @given(x=states)
    def test_linear_model_resistance_between_bounds(self, x):
        device = LinearIonDriftMemristor(x=x)
        assert device.r_on <= device.resistance() <= device.r_off

    @given(x=states, v=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False))
    def test_current_sign_follows_voltage(self, x, v):
        device = IdealBipolarMemristor(x=x)
        current = device.current(v)
        assert math.copysign(1.0, current) == math.copysign(1.0, v) or current == 0


class TestRetentionProperty:
    @given(
        x=states,
        v=st.floats(min_value=-0.99, max_value=0.99, allow_nan=False),
        t=st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    )
    def test_ideal_device_retains_below_threshold(self, x, v, t):
        """Nonvolatility: sub-threshold bias never moves the state,
        no matter how long it is applied."""
        device = IdealBipolarMemristor(x=x)
        device.apply_voltage(v, t)
        assert device.x == x


class TestMonotonicityProperty:
    @given(
        x=states,
        v=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        t=durations,
    )
    def test_positive_overdrive_never_decreases_state(self, x, v, t):
        device = IdealBipolarMemristor(x=x)
        device.apply_voltage(v, t)
        assert device.x >= x

    @given(
        x=states,
        v=st.floats(min_value=-3.0, max_value=-1.0, allow_nan=False),
        t=durations,
    )
    def test_negative_overdrive_never_increases_state(self, x, v, t):
        device = IdealBipolarMemristor(x=x)
        device.apply_voltage(v, t)
        assert device.x <= x


class TestCRSProperties:
    @given(bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_write_read_sequence_always_consistent(self, bits):
        """Any sequence of writes and destructive reads round-trips."""
        cell = ComplementaryResistiveSwitch()
        for bit in bits:
            cell.write(bit)
            assert cell.read() == bit
            assert cell.stored_bit() == bit

    @given(
        v=st.floats(min_value=-0.6, max_value=0.6, allow_nan=False),
        t=st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
    )
    def test_low_bias_never_corrupts(self, v, t):
        """Below Vth1 in magnitude, CRS state is untouchable — the
        sneak-path immunity property."""
        for initial in (0, 1):
            cell = ComplementaryResistiveSwitch()
            cell.write(initial)
            cell.apply_voltage(v, t)
            assert cell.stored_bit() == initial

    @given(
        v_set=st.floats(min_value=0.3, max_value=1.2),
        v_reset_mag=st.floats(min_value=0.2, max_value=1.5),
    )
    @settings(max_examples=60)
    def test_threshold_geometry(self, v_set, v_reset_mag):
        """For any element parameters with a non-empty read window, the
        composite thresholds keep their Fig 4 ordering."""
        if v_set >= 2 * v_reset_mag - 1e-9:
            return  # empty window: constructor rejects (tested elsewhere)
        make = lambda: IdealBipolarMemristor(
            thresholds=SwitchingThresholds(v_set=v_set, v_reset=-v_reset_mag)
        )
        cell = ComplementaryResistiveSwitch(make(), make())
        vth1, vth2, vth3, vth4 = cell.thresholds()
        assert vth1 < vth2 and vth4 < vth3 < 0 < vth1
