"""Tests for the crossbar electrical solvers against hand-computable
circuits."""

import numpy as np
import pytest

from repro.crossbar.solver import solve_ideal_wires, solve_with_wire_resistance
from repro.errors import CrossbarError


class TestIdealWiresSingleCell:
    def test_one_junction_ohms_law(self):
        g = np.array([[1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        assert sol.junction_currents[0, 0] == pytest.approx(1e-3)
        assert sol.row_currents[0] == pytest.approx(1e-3)
        assert sol.col_currents[0] == pytest.approx(1e-3)

    def test_junction_voltage(self):
        g = np.array([[2e-3]])
        sol = solve_ideal_wires(g, {0: 0.5}, {0: 0.0})
        assert sol.junction_voltage(0, 0) == pytest.approx(0.5)

    def test_reverse_polarity(self):
        g = np.array([[1e-3]])
        sol = solve_ideal_wires(g, {0: -1.0}, {0: 0.0})
        assert sol.junction_currents[0, 0] == pytest.approx(-1e-3)


class TestFloatingLines:
    def test_voltage_divider_through_floating_column(self):
        """Two junctions in series via a floating column: the column
        floats to the divider midpoint."""
        g = np.array([[1e-3], [1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.0}, {})
        assert sol.col_voltages[0] == pytest.approx(0.5)
        # Current flows row0 -> col -> row1.
        assert sol.row_currents[0] == pytest.approx(0.5e-3)
        assert sol.row_currents[1] == pytest.approx(-0.5e-3)

    def test_unequal_divider(self):
        g = np.array([[3e-3], [1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.0}, {})
        assert sol.col_voltages[0] == pytest.approx(0.75)

    def test_floating_rows_kcl(self):
        """2x2 with one driven row, one floating row: the sneak path
        row0 -> col1 -> row1 -> col0 must carry current."""
        g = np.full((2, 2), 1e-3)
        sol = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        # Floating nodes settle between the rails.
        assert 0.0 < sol.row_voltages[1] < 1.0
        assert 0.0 < sol.col_voltages[1] < 1.0
        # The sneak contribution adds to the selected column current:
        # direct path 1mS * 1V = 1 mA, sneak path = 3 junctions in
        # series = (1/3) mS -> total 4/3 mA.
        assert sol.col_currents[0] == pytest.approx(4.0 / 3.0 * 1e-3)

    def test_kcl_on_floating_lines(self):
        g = np.array([[1e-3, 2e-3, 0.5e-3], [2e-4, 1e-3, 1e-3]])
        sol = solve_ideal_wires(g, {0: 0.8}, {1: 0.0})
        # Net current into every floating line is zero.
        assert sol.row_currents[1] == pytest.approx(0.0, abs=1e-15)
        assert sol.col_currents[0] == pytest.approx(0.0, abs=1e-15)
        assert sol.col_currents[2] == pytest.approx(0.0, abs=1e-15)

    def test_energy_conservation(self):
        g = np.full((3, 3), 1e-4)
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.5}, {0: 0.0, 2: 0.2})
        source_power = (
            sol.row_voltages @ sol.row_currents
            - sol.col_voltages @ sol.col_currents
        )
        dissipated = (
            sol.junction_currents ** 2 / np.where(g > 0, g, 1.0)
        ).sum()
        assert source_power == pytest.approx(dissipated)


class TestValidation:
    def test_requires_a_driven_line(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones((2, 2)), {}, {})

    def test_rejects_out_of_range_index(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones((2, 2)), {5: 1.0}, {0: 0.0})

    def test_rejects_negative_conductance(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.array([[-1.0]]), {0: 1.0}, {0: 0.0})

    def test_rejects_1d_matrix(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones(3), {0: 1.0}, {0: 0.0})

    def test_disconnected_floating_line_is_singular(self):
        g = np.array([[1e-3, 0.0], [0.0, 0.0]])
        with pytest.raises(CrossbarError):
            solve_ideal_wires(g, {0: 1.0}, {0: 0.0})


class TestWireResistance:
    def test_reduces_to_ideal_for_tiny_wire_resistance(self):
        g = np.full((3, 3), 1e-4)
        ideal = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        wired = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=1e-6
        )
        assert wired.col_currents[0] == pytest.approx(
            ideal.col_currents[0], rel=1e-3
        )

    def test_ir_drop_reduces_far_cell_voltage(self):
        """With significant line resistance the junction farthest from
        the drivers sees less voltage than the nearest one."""
        g = np.full((4, 4), 1e-4)
        sol = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=500.0
        )
        near = sol.junction_voltage(0, 0)
        far = sol.junction_voltage(0, 3)
        assert far < near

    def test_driver_resistance_drops_voltage(self):
        g = np.array([[1e-3]])
        sol = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=1e-3, driver_resistance=1000.0
        )
        # 1 kohm row driver + 1 kohm junction + 1 kohm column driver:
        # a third of the voltage appears across the cell.
        assert sol.junction_voltage(0, 0) == pytest.approx(1.0 / 3.0, rel=0.01)

    def test_terminal_currents_balance(self):
        g = np.full((3, 3), 1e-4)
        sol = solve_with_wire_resistance(g, {0: 1.0, 2: 1.0}, {1: 0.0},
                                         wire_resistance=10.0)
        assert sol.row_currents.sum() == pytest.approx(
            sol.col_currents.sum(), rel=1e-6
        )

    def test_size_guard(self):
        g = np.ones((100, 100))
        with pytest.raises(CrossbarError):
            solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})

    def test_rejects_nonpositive_wire_resistance(self):
        with pytest.raises(CrossbarError):
            solve_with_wire_resistance(
                np.ones((2, 2)), {0: 1.0}, {0: 0.0}, wire_resistance=0.0
            )
