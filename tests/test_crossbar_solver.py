"""Tests for the crossbar electrical solvers against hand-computable
circuits."""

import numpy as np
import pytest

from repro.crossbar.solver import (
    DENSE_NODE_LIMIT,
    clear_factorization_cache,
    factorization_cache_len,
    scipy_available,
    solve_ideal_wires,
    solve_junction_variants,
    solve_many_with_wire_resistance,
    solve_with_wire_resistance,
    _CACHE_HIT,
    _CACHE_MISS,
)
from repro.errors import CrossbarError

needs_scipy = pytest.mark.skipif(
    not scipy_available(), reason="scipy (repro[fast]) not installed")


class TestIdealWiresSingleCell:
    def test_one_junction_ohms_law(self):
        g = np.array([[1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        assert sol.junction_currents[0, 0] == pytest.approx(1e-3)
        assert sol.row_currents[0] == pytest.approx(1e-3)
        assert sol.col_currents[0] == pytest.approx(1e-3)

    def test_junction_voltage(self):
        g = np.array([[2e-3]])
        sol = solve_ideal_wires(g, {0: 0.5}, {0: 0.0})
        assert sol.junction_voltage(0, 0) == pytest.approx(0.5)

    def test_reverse_polarity(self):
        g = np.array([[1e-3]])
        sol = solve_ideal_wires(g, {0: -1.0}, {0: 0.0})
        assert sol.junction_currents[0, 0] == pytest.approx(-1e-3)


class TestFloatingLines:
    def test_voltage_divider_through_floating_column(self):
        """Two junctions in series via a floating column: the column
        floats to the divider midpoint."""
        g = np.array([[1e-3], [1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.0}, {})
        assert sol.col_voltages[0] == pytest.approx(0.5)
        # Current flows row0 -> col -> row1.
        assert sol.row_currents[0] == pytest.approx(0.5e-3)
        assert sol.row_currents[1] == pytest.approx(-0.5e-3)

    def test_unequal_divider(self):
        g = np.array([[3e-3], [1e-3]])
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.0}, {})
        assert sol.col_voltages[0] == pytest.approx(0.75)

    def test_floating_rows_kcl(self):
        """2x2 with one driven row, one floating row: the sneak path
        row0 -> col1 -> row1 -> col0 must carry current."""
        g = np.full((2, 2), 1e-3)
        sol = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        # Floating nodes settle between the rails.
        assert 0.0 < sol.row_voltages[1] < 1.0
        assert 0.0 < sol.col_voltages[1] < 1.0
        # The sneak contribution adds to the selected column current:
        # direct path 1mS * 1V = 1 mA, sneak path = 3 junctions in
        # series = (1/3) mS -> total 4/3 mA.
        assert sol.col_currents[0] == pytest.approx(4.0 / 3.0 * 1e-3)

    def test_kcl_on_floating_lines(self):
        g = np.array([[1e-3, 2e-3, 0.5e-3], [2e-4, 1e-3, 1e-3]])
        sol = solve_ideal_wires(g, {0: 0.8}, {1: 0.0})
        # Net current into every floating line is zero.
        assert sol.row_currents[1] == pytest.approx(0.0, abs=1e-15)
        assert sol.col_currents[0] == pytest.approx(0.0, abs=1e-15)
        assert sol.col_currents[2] == pytest.approx(0.0, abs=1e-15)

    def test_energy_conservation(self):
        g = np.full((3, 3), 1e-4)
        sol = solve_ideal_wires(g, {0: 1.0, 1: 0.5}, {0: 0.0, 2: 0.2})
        source_power = (
            sol.row_voltages @ sol.row_currents
            - sol.col_voltages @ sol.col_currents
        )
        dissipated = (
            sol.junction_currents ** 2 / np.where(g > 0, g, 1.0)
        ).sum()
        assert source_power == pytest.approx(dissipated)


class TestValidation:
    def test_requires_a_driven_line(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones((2, 2)), {}, {})

    def test_rejects_out_of_range_index(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones((2, 2)), {5: 1.0}, {0: 0.0})

    def test_rejects_negative_conductance(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.array([[-1.0]]), {0: 1.0}, {0: 0.0})

    def test_rejects_1d_matrix(self):
        with pytest.raises(CrossbarError):
            solve_ideal_wires(np.ones(3), {0: 1.0}, {0: 0.0})

    def test_disconnected_floating_line_is_singular(self):
        g = np.array([[1e-3, 0.0], [0.0, 0.0]])
        with pytest.raises(CrossbarError):
            solve_ideal_wires(g, {0: 1.0}, {0: 0.0})


class TestWireResistance:
    def test_reduces_to_ideal_for_tiny_wire_resistance(self):
        g = np.full((3, 3), 1e-4)
        ideal = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        wired = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=1e-6
        )
        assert wired.col_currents[0] == pytest.approx(
            ideal.col_currents[0], rel=1e-3
        )

    def test_ir_drop_reduces_far_cell_voltage(self):
        """With significant line resistance the junction farthest from
        the drivers sees less voltage than the nearest one."""
        g = np.full((4, 4), 1e-4)
        sol = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=500.0
        )
        near = sol.junction_voltage(0, 0)
        far = sol.junction_voltage(0, 3)
        assert far < near

    def test_driver_resistance_drops_voltage(self):
        g = np.array([[1e-3]])
        sol = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=1e-3, driver_resistance=1000.0
        )
        # 1 kohm row driver + 1 kohm junction + 1 kohm column driver:
        # a third of the voltage appears across the cell.
        assert sol.junction_voltage(0, 0) == pytest.approx(1.0 / 3.0, rel=0.01)

    def test_terminal_currents_balance(self):
        g = np.full((3, 3), 1e-4)
        sol = solve_with_wire_resistance(g, {0: 1.0, 2: 1.0}, {1: 0.0},
                                         wire_resistance=10.0)
        assert sol.row_currents.sum() == pytest.approx(
            sol.col_currents.sum(), rel=1e-6
        )

    def test_dense_fallback_size_guard(self):
        """The dense backend still refuses huge systems; the message
        points at the sparse extra."""
        g = np.ones((100, 100))
        assert 2 * g.size > DENSE_NODE_LIMIT
        with pytest.raises(CrossbarError, match="repro\\[fast\\]"):
            solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0}, backend="dense")

    def test_dense_guard_boundary_is_exclusive(self):
        """Regression: a system of *exactly* DENSE_NODE_LIMIT nodes used
        to slip past the `>` comparison and attempt the O(n^2)-memory
        dense factorization the limit exists to prevent."""
        rows, cols = 64, 128
        assert 2 * rows * cols == DENSE_NODE_LIMIT
        with pytest.raises(CrossbarError, match="repro\\[fast\\]"):
            solve_with_wire_resistance(
                np.full((rows, cols), 1e-4), {0: 1.0}, {0: 0.0},
                backend="dense",
            )

    @needs_scipy
    def test_sparse_backend_has_no_size_cap(self):
        """The seed's 8192-node cap is gone: 100x100 (20k nodes) solves."""
        g = np.full((100, 100), 1e-4)
        sol = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0},
                                         wire_resistance=10.0)
        assert np.isfinite(sol.junction_currents).all()
        assert sol.col_currents[0] > 0

    def test_rejects_nonpositive_wire_resistance(self):
        with pytest.raises(CrossbarError):
            solve_with_wire_resistance(
                np.ones((2, 2)), {0: 1.0}, {0: 0.0}, wire_resistance=0.0
            )

    def test_rejects_unknown_backend(self):
        with pytest.raises(CrossbarError):
            solve_with_wire_resistance(
                np.ones((2, 2)), {0: 1.0}, {0: 0.0}, backend="quantum"
            )

    def test_rejects_negative_conductance(self):
        with pytest.raises(CrossbarError):
            solve_with_wire_resistance(
                np.array([[-1.0]]), {0: 1.0}, {0: 0.0}
            )

    def test_disconnected_line_is_singular(self):
        """An undriven line with no junction path anywhere is a floating
        island: the system is singular on every backend."""
        g = np.array([[1e-3, 0.0], [0.0, 0.0]])
        backends = ["dense"] + (["sparse"] if scipy_available() else [])
        for backend in backends:
            with pytest.raises(CrossbarError):
                solve_with_wire_resistance(
                    g, {0: 1.0}, {0: 0.0}, backend=backend
                )


class TestCurrentConservation:
    """Regression for the terminal-current extraction bug: the seed
    recovered driven-line currents by differencing adjacent node
    voltages across one wire segment, which cancels catastrophically as
    wire resistance shrinks (~0.4% row/col mismatch at 1e-9 ohm)."""

    @pytest.mark.parametrize("wire_resistance", [1e-9, 1e-3, 1.0])
    def test_row_col_totals_agree(self, wire_resistance):
        rng = np.random.default_rng(42)
        g = rng.uniform(1e-5, 1e-3, (8, 8))
        sol = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=wire_resistance
        )
        assert sol.row_currents.sum() == pytest.approx(
            sol.col_currents.sum(), rel=1e-6
        )

    @pytest.mark.parametrize("wire_resistance", [1e-9, 1e-3, 1.0])
    def test_all_driven_totals_agree(self, wire_resistance):
        g = np.full((6, 6), 1e-4)
        rd = {r: 1.0 for r in range(6)}
        cd = {c: 0.0 for c in range(6)}
        sol = solve_with_wire_resistance(
            g, rd, cd, wire_resistance=wire_resistance
        )
        assert sol.row_currents.sum() == pytest.approx(
            sol.col_currents.sum(), rel=1e-6
        )

    def test_tiny_wire_resistance_matches_ideal(self):
        """At 1e-9 ohm/segment the network is electrically ideal.  The
        recovered terminals must track the ideal solver (the float64
        nodal stamp itself carries ~1e-3 error at g_wire/g_junction ~
        1e13, so 1% is the right bar) and, unlike the seed's one-segment
        differencing, must agree with *each other* to solver tolerance."""
        g = np.full((4, 4), 1e-4)
        ideal = solve_ideal_wires(g, {0: 1.0}, {0: 0.0})
        wired = solve_with_wire_resistance(
            g, {0: 1.0}, {0: 0.0}, wire_resistance=1e-9
        )
        assert wired.row_currents[0] == pytest.approx(
            ideal.row_currents[0], rel=1e-2
        )
        assert wired.col_currents[0] == pytest.approx(
            ideal.col_currents[0], rel=1e-2
        )
        assert wired.row_currents.sum() == pytest.approx(
            wired.col_currents.sum(), rel=1e-9
        )

    def test_conservation_with_driver_resistance(self):
        g = np.full((5, 5), 2e-4)
        sol = solve_with_wire_resistance(
            g, {0: 1.0, 3: 0.7}, {1: 0.0}, wire_resistance=1e-6,
            driver_resistance=50.0,
        )
        assert sol.row_currents.sum() == pytest.approx(
            sol.col_currents.sum(), rel=1e-6
        )


class TestFactorizationCache:
    def setup_method(self):
        clear_factorization_cache()

    def test_warm_solve_is_identical_and_hits(self):
        g = np.full((4, 4), 1e-4)
        hits = _CACHE_HIT.value
        misses = _CACHE_MISS.value
        cold = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0},
                                          wire_resistance=2.0)
        warm = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0},
                                          wire_resistance=2.0)
        assert _CACHE_MISS.value == misses + 1
        assert _CACHE_HIT.value == hits + 1
        np.testing.assert_array_equal(cold.row_voltages, warm.row_voltages)
        np.testing.assert_array_equal(cold.junction_currents,
                                      warm.junction_currents)

    def test_changed_conductances_do_not_reuse_stale_factorization(self):
        g = np.full((3, 3), 1e-4)
        sol_a = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})
        g2 = g * 2.0
        sol_b = solve_with_wire_resistance(g2, {0: 1.0}, {0: 0.0})
        assert sol_b.col_currents[0] > 1.5 * sol_a.col_currents[0]

    def test_same_pattern_different_voltages_share_factorization(self):
        """Drive voltages only enter the right-hand side: one cached
        factorization serves them all, and linearity holds."""
        g = np.full((3, 3), 1e-4)
        rd = {r: 1.0 for r in range(3)}
        cd = {c: 0.0 for c in range(3)}
        solve_with_wire_resistance(g, rd, cd, wire_resistance=1e-3)
        before = factorization_cache_len()
        half = solve_with_wire_resistance(
            g, {r: 0.5 for r in rd}, cd, wire_resistance=1e-3)
        full = solve_with_wire_resistance(g, rd, cd, wire_resistance=1e-3)
        assert factorization_cache_len() == before
        assert np.allclose(half.junction_currents * 2.0,
                           full.junction_currents, rtol=1e-9)

    def test_clear_empties_cache(self):
        g = np.full((2, 2), 1e-4)
        solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})
        assert factorization_cache_len() >= 1
        clear_factorization_cache()
        assert factorization_cache_len() == 0

    def test_in_place_mutation_does_not_reuse_stale_factorization(self):
        """Regression guard: mutating the conductance matrix *in place*
        (same array object, same shape) must still miss the cache — the
        key hashes the matrix contents at lookup time, not object
        identity at insert time."""
        g = np.full((3, 3), 1e-4)
        sol_a = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})
        g *= 2.0  # same ndarray object, new contents
        sol_b = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})
        assert sol_b.col_currents[0] > 1.5 * sol_a.col_currents[0]
        g[1, 1] = 5e-4  # single-element write, same object again
        sol_c = solve_with_wire_resistance(g, {0: 1.0}, {0: 0.0})
        assert not np.allclose(sol_c.junction_currents,
                               sol_b.junction_currents)


class TestMultiRHS:
    def setup_method(self):
        clear_factorization_cache()

    def _patterns(self, rows, cols):
        return [
            ({0: 1.0}, {0: 0.0}),
            ({0: 0.4}, {0: 0.0}),                      # same structure
            ({1: 1.0}, {2: 0.0}),                      # different lines
            ({r: 1.0 for r in range(rows)},
             {c: 0.0 for c in range(cols)}),           # all driven
        ]

    def test_solve_many_matches_sequential(self):
        rng = np.random.default_rng(3)
        g = rng.uniform(1e-5, 1e-3, (5, 6))
        drives = self._patterns(5, 6)
        batched = solve_many_with_wire_resistance(
            g, drives, wire_resistance=2.0)
        for (rd, cd), sol in zip(drives, batched):
            single = solve_with_wire_resistance(
                g, rd, cd, wire_resistance=2.0)
            np.testing.assert_allclose(
                sol.junction_currents, single.junction_currents,
                rtol=1e-9)
            np.testing.assert_allclose(
                sol.col_currents, single.col_currents, rtol=1e-9)

    def test_solve_many_groups_by_structure(self):
        """Patterns driving the same line sets share one factorization:
        4 patterns over 3 distinct structures -> 3 cache misses."""
        g = np.full((5, 6), 1e-4)
        misses = _CACHE_MISS.value
        solve_many_with_wire_resistance(
            g, self._patterns(5, 6), wire_resistance=2.0)
        assert _CACHE_MISS.value == misses + 3

    def test_solve_many_empty_and_bad_pattern(self):
        g = np.full((2, 2), 1e-4)
        assert solve_many_with_wire_resistance(g, []) == []
        with pytest.raises(CrossbarError, match="pattern 1:"):
            solve_many_with_wire_resistance(
                g, [({0: 1.0}, {0: 0.0}), ({5: 1.0}, {0: 0.0})])

    def test_junction_variants_match_full_solves(self):
        rng = np.random.default_rng(11)
        g = rng.uniform(1e-5, 1e-3, (6, 6))
        rd, cd = {0: 1.0}, {0: 0.0}
        variants = [(0, 0, 5e-4), (3, 4, 1e-5), (2, 2, g[2, 2])]
        base, solved = solve_junction_variants(
            g, rd, cd, variants, wire_resistance=3.0)
        reference = solve_with_wire_resistance(
            g, rd, cd, wire_resistance=3.0)
        np.testing.assert_allclose(
            base.junction_currents, reference.junction_currents,
            rtol=1e-9)
        for (r, c, g_new), sol in zip(variants, solved):
            g_var = g.copy()
            g_var[r, c] = g_new
            full = solve_with_wire_resistance(
                g_var, rd, cd, wire_resistance=3.0)
            # atol floors out float noise on undriven (floating) lines
            # whose true current is ~0 at the 1e-3 A problem scale.
            np.testing.assert_allclose(
                sol.col_currents, full.col_currents,
                rtol=1e-6, atol=1e-12)
            np.testing.assert_allclose(
                sol.junction_currents, full.junction_currents,
                rtol=1e-6, atol=1e-12)

    def test_junction_variants_one_factorization(self):
        g = np.full((4, 4), 1e-4)
        misses = _CACHE_MISS.value
        solve_junction_variants(
            g, {0: 1.0}, {0: 0.0},
            [(0, 0, 5e-4), (1, 1, 2e-4), (3, 3, 9e-4)],
            wire_resistance=2.0)
        assert _CACHE_MISS.value == misses + 1

    def test_junction_variants_validation(self):
        g = np.full((2, 2), 1e-4)
        with pytest.raises(CrossbarError):
            solve_junction_variants(
                g, {0: 1.0}, {0: 0.0}, [(2, 0, 1e-4)],
                wire_resistance=1.0)
        with pytest.raises(CrossbarError):
            solve_junction_variants(
                g, {0: 1.0}, {0: 0.0}, [(0, 0, -1e-4)],
                wire_resistance=1.0)
