"""Tests for repro.devices.windows."""

import pytest

from repro.devices import windows
from repro.errors import DeviceError


class TestRectangular:
    def test_is_unity_everywhere(self):
        for x in (0.0, 0.3, 1.0):
            assert windows.rectangular(x) == 1.0


class TestJoglekar:
    def test_vanishes_at_boundaries(self):
        assert windows.joglekar(0.0) == pytest.approx(0.0)
        assert windows.joglekar(1.0) == pytest.approx(0.0)

    def test_peaks_at_center(self):
        assert windows.joglekar(0.5) == pytest.approx(1.0)

    def test_symmetric(self):
        assert windows.joglekar(0.2) == pytest.approx(windows.joglekar(0.8))

    def test_larger_p_flattens(self):
        # Higher p keeps the window closer to 1 in the interior.
        assert windows.joglekar(0.3, p=5) > windows.joglekar(0.3, p=1)

    def test_rejects_bad_x(self):
        with pytest.raises(DeviceError):
            windows.joglekar(1.5)

    def test_rejects_bad_p(self):
        with pytest.raises(DeviceError):
            windows.joglekar(0.5, p=0)


class TestBiolek:
    def test_direction_dependence(self):
        # Moving up (positive current) at x=1 must stall...
        assert windows.biolek(1.0, current=1.0) == pytest.approx(0.0)
        # ...but moving down from x=1 must be allowed.
        assert windows.biolek(1.0, current=-1.0) > 0.5

    def test_no_terminal_lockup_at_zero(self):
        # The Joglekar failure mode: at x=0 the device can still set.
        assert windows.biolek(0.0, current=1.0) == pytest.approx(1.0)

    def test_down_motion_stalls_at_zero(self):
        assert windows.biolek(0.0, current=-1.0) == pytest.approx(0.0)

    def test_rejects_bad_x(self):
        with pytest.raises(DeviceError):
            windows.biolek(-0.1, current=1.0)


class TestProdromakis:
    def test_vanishes_at_boundaries(self):
        assert windows.prodromakis(0.0) == pytest.approx(0.0)
        assert windows.prodromakis(1.0) == pytest.approx(0.0)

    def test_scale_parameter(self):
        assert windows.prodromakis(0.5, j=2.0) == pytest.approx(
            2.0 * windows.prodromakis(0.5, j=1.0)
        )

    def test_rejects_nonpositive_j(self):
        with pytest.raises(DeviceError):
            windows.prodromakis(0.5, j=0.0)

    def test_symmetric(self):
        assert windows.prodromakis(0.1) == pytest.approx(windows.prodromakis(0.9))
