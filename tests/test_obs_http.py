"""The live telemetry HTTP endpoint and `repro top` (ISSUE 6, part 4)."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.httpexport import TelemetryHTTPServer, fetch_json, render_top
from repro.obs.registry import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "served").inc(7)
    reg.summary("latency_seconds").labels(kernel="adder").observe(0.002)
    return reg


def populated_flight() -> FlightRecorder:
    recorder = FlightRecorder()
    for i in range(4):
        rec = FlightRecord(request_id=f"r{i}", kernel="adder",
                           accepted_at=float(i))
        rec.stages["execute"] = 0.001
        rec.close("ok", at=float(i) + 0.01)
        recorder.record(rec)
    return recorder


def serve_and_fetch(paths, *, registry=None, flight=None, health=None,
                    raw=False):
    """Start a server, GET every path from a worker thread, stop it."""

    async def scenario():
        server = TelemetryHTTPServer(
            registry=registry if registry is not None else populated_registry(),
            flight=flight if flight is not None else populated_flight(),
            health=health,
        )
        await server.start()

        def client():
            out = []
            for path in paths:
                with urllib.request.urlopen(server.url + path, timeout=5) as r:
                    body = r.read().decode("utf-8")
                    out.append(body if raw else json.loads(body))
            return out

        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(None, client)
        finally:
            await server.stop()

    return asyncio.run(scenario())


class TestRoutes:
    def test_metrics_prometheus_text(self):
        (body,) = serve_and_fetch(["/metrics"], raw=True)
        assert "# TYPE requests_total counter" in body
        assert "requests_total 7.0" in body
        assert 'latency_seconds{kernel="adder",quantile="0.5"}' in body

    def test_metrics_json_snapshot(self):
        (snapshot,) = serve_and_fetch(["/metrics?format=json"])
        assert snapshot["requests_total"]["value"] == 7.0
        child = snapshot["latency_seconds"]["children"][0]
        assert child["labels"] == {"kernel": "adder"}
        assert child["count"] == 1

    def test_healthz_includes_extra_fields(self):
        (health,) = serve_and_fetch(
            ["/healthz"], health=lambda: {"queue_depth": 3})
        assert health["status"] == "ok"
        assert health["queue_depth"] == 3
        assert health["flight_records"] == 4
        assert health["uptime_s"] >= 0

    def test_flight_dump_and_last_n(self):
        everything, last_two = serve_and_fetch(["/flight", "/flight?last=2"])
        assert [r["request_id"] for r in everything["records"]] == [
            "r0", "r1", "r2", "r3"]
        assert [r["request_id"] for r in last_two["records"]] == ["r2", "r3"]
        assert last_two["records"][0]["stages"]["execute"] == 0.001


class TestErrors:
    def test_unknown_route_is_404(self):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            serve_and_fetch(["/nope"])
        assert excinfo.value.code == 404

    def test_bad_last_is_400(self):
        for query in ("last=abc", "last=-1"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                serve_and_fetch([f"/flight?{query}"])
            assert excinfo.value.code == 400

    def test_post_is_405(self):
        async def scenario():
            server = TelemetryHTTPServer(registry=MetricsRegistry(),
                                         flight=FlightRecorder())
            await server.start()

            def client():
                req = urllib.request.Request(
                    server.url + "/metrics", data=b"x", method="POST")
                try:
                    urllib.request.urlopen(req, timeout=5)
                except urllib.error.HTTPError as exc:
                    return exc.code
                return None

            try:
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, client)
            finally:
                await server.stop()

        assert asyncio.run(scenario()) == 405

    def test_port_reports_only_while_running(self):
        server = TelemetryHTTPServer()
        with pytest.raises(ObservabilityError):
            server.port

    def test_double_start_rejected(self):
        async def scenario():
            server = TelemetryHTTPServer(registry=MetricsRegistry(),
                                         flight=FlightRecorder())
            await server.start()
            try:
                with pytest.raises(ObservabilityError):
                    await server.start()
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestClientHelpers:
    def test_fetch_json_rejects_unreachable(self):
        with pytest.raises(ObservabilityError):
            fetch_json("http://127.0.0.1:1/healthz", timeout=0.2)

    def test_render_top_sections(self):
        snapshot = {
            "latency_seconds": {
                "kind": "summary", "help": "",
                "count": 0, "sum": 0.0, "quantiles": {},
                "children": [{
                    "kind": "summary", "labels": {"kernel": "adder"},
                    "count": 10, "sum": 0.02, "mean": 0.002,
                    "min": 0.001, "max": 0.003,
                    "quantiles": {"0.5": 0.002, "0.99": 0.003},
                }],
            },
            "requests_total": {"kind": "counter", "help": "", "value": 7.0},
        }
        health = {"status": "ok", "queue_depth": 2}
        flight = [{"request_id": "r1", "status": "ok", "kernel": "adder",
                   "wall_s": 0.004, "stages": {"execute": 0.001}}]
        view = render_top(snapshot, health, flight)
        assert "health: queue_depth=2 status=ok" in view
        assert "latency_seconds{kernel=adder}: n=10 p50=0.002 p99=0.003" in view
        assert "requests_total: 7" in view
        assert "r1 [ok] adder wall=4000us execute=1000us" in view

    def test_render_top_empty(self):
        assert render_top({}) == "(no telemetry)"


class TestTopCommand:
    def test_repro_top_one_iteration(self, capsys):
        """`repro top --iterations 1` polls a live endpoint and renders."""
        from repro.__main__ import main

        started = threading.Event()
        stop = threading.Event()
        url_box = {}

        def endpoint_thread():
            async def run_server():
                server = TelemetryHTTPServer(
                    registry=populated_registry(), flight=populated_flight())
                await server.start()
                url_box["url"] = f"127.0.0.1:{server.port}"
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.stop()

            asyncio.run(run_server())

        thread = threading.Thread(target=endpoint_thread)
        thread.start()
        try:
            assert started.wait(5)
            code = main(["top", url_box["url"], "--iterations", "1",
                         "--interval", "0"])
        finally:
            stop.set()
            thread.join(timeout=5)
        assert code == 0
        out = capsys.readouterr().out
        assert "requests_total: 7" in out
        assert "recent flights:" in out

    def test_repro_top_json_mode(self, capsys):
        from repro.__main__ import main

        started = threading.Event()
        stop = threading.Event()
        url_box = {}

        def endpoint_thread():
            async def run_server():
                server = TelemetryHTTPServer(
                    registry=populated_registry(), flight=populated_flight())
                await server.start()
                url_box["url"] = f"127.0.0.1:{server.port}"
                started.set()
                while not stop.is_set():
                    await asyncio.sleep(0.01)
                await server.stop()

            asyncio.run(run_server())

        thread = threading.Thread(target=endpoint_thread)
        thread.start()
        try:
            assert started.wait(5)
            code = main(["top", url_box["url"], "--iterations", "1",
                         "--interval", "0", "--json"])
        finally:
            stop.set()
            thread.join(timeout=5)
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["status"] == "ok"
        assert payload["metrics"]["requests_total"]["value"] == 7.0
        assert len(payload["flight"]) == 4
