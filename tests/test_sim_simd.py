"""Tests for lock-step SIMD execution across crossbar rows."""

import itertools

import pytest

from repro.crossbar import CrossbarArray
from repro.devices import MEMRISTOR_5NM
from repro.errors import LogicError
from repro.logic import build_gate, full_adder_program
from repro.sim import SIMDRowExecutor


def make_array(rows=6, cols=30):
    return CrossbarArray(rows, cols)


class TestLockStepExecution:
    def test_all_truth_table_rows_in_one_batch(self):
        """The four XOR input patterns execute on four rows at once."""
        array = make_array()
        executor = SIMDRowExecutor(array)
        program = build_gate("XOR")
        patterns = list(itertools.product((0, 1), repeat=2))
        per_row = {
            row: {"a": a, "b": b} for row, (a, b) in enumerate(patterns)
        }
        report = executor.run(program, per_row)
        assert [o["out"] for o in report.outputs] == [a ^ b for a, b in patterns]

    def test_full_adders_in_parallel(self):
        array = make_array(rows=8, cols=40)
        executor = SIMDRowExecutor(array)
        program = full_adder_program()
        patterns = list(itertools.product((0, 1), repeat=3))
        per_row = {
            row: dict(zip(["a", "b", "cin"], bits))
            for row, bits in enumerate(patterns)
        }
        report = executor.run(program, per_row)
        for bits, out in zip(patterns, report.outputs):
            total = sum(bits)
            assert out["sum"] == total & 1
            assert out["cout"] == total >> 1

    def test_map_unary_helper(self):
        array = make_array()
        executor = SIMDRowExecutor(array)
        report = executor.map_unary(
            build_gate("NOT"),
            [{"a": 0}, {"a": 1}, {"a": 0}],
            base_row=2,
        )
        assert [o["out"] for o in report.outputs] == [1, 0, 1]


class TestCostAsymmetry:
    def test_latency_charged_once(self):
        """The defining SIMD property: adding rows adds energy, not
        time."""
        program = build_gate("AND")
        one = SIMDRowExecutor(make_array()).run(program, {0: {"a": 1, "b": 1}})
        four = SIMDRowExecutor(make_array()).run(program, {
            row: {"a": 1, "b": 1} for row in range(4)
        })
        assert four.latency == one.latency
        assert four.energy == pytest.approx(4 * one.energy)

    def test_costs_match_technology(self):
        program = build_gate("NAND")
        report = SIMDRowExecutor(make_array()).run(
            program, {0: {"a": 0, "b": 1}, 1: {"a": 1, "b": 1}}
        )
        assert report.latency == pytest.approx(
            program.step_count * MEMRISTOR_5NM.write_time
        )
        assert report.energy == pytest.approx(
            2 * program.step_count * MEMRISTOR_5NM.write_energy
        )
        assert report.steps_per_row == program.step_count


class TestIsolation:
    def test_storage_rows_untouched(self):
        array = make_array(rows=5, cols=20)
        stored = [1, 0, 1, 1, 0] * 4
        array.write_pattern([stored] + [[0] * 20] * 3 + [stored])
        executor = SIMDRowExecutor(array)
        executor.run(build_gate("OR"), {
            1: {"a": 1, "b": 0}, 2: {"a": 0, "b": 0}, 3: {"a": 1, "b": 1},
        })
        pattern = array.read_pattern()
        assert pattern[0] == stored
        assert pattern[4] == stored

    def test_empty_batch_rejected(self):
        with pytest.raises(LogicError):
            SIMDRowExecutor(make_array()).run(build_gate("NOT"), {})

    def test_row_bounds_checked(self):
        with pytest.raises(LogicError):
            SIMDRowExecutor(make_array(rows=2)).run(
                build_gate("NOT"), {7: {"a": 1}}
            )

    def test_register_overflow_detected_per_row(self):
        from repro.logic import ripple_adder_program

        narrow = CrossbarArray(2, 6)
        executor = SIMDRowExecutor(narrow)
        inputs = {f"a{i}": 0 for i in range(4)}
        inputs.update({f"b{i}": 0 for i in range(4)})
        with pytest.raises(LogicError):
            executor.run(ripple_adder_program(4), {0: inputs})
