"""Tests for the analog VMM crossbar."""

import numpy as np
import pytest

from repro.analog import AnalogCrossbar, AnalogSpec, DifferentialCrossbar
from repro.errors import CrossbarError


def example_weights():
    return np.array([
        [1.0, 2.0, 3.0],
        [0.0, -1.0, 2.0],
        [5.0, 5.0, 5.0],
        [-2.0, 0.0, 1.0],
    ])


class TestAnalogSpec:
    def test_defaults_valid(self):
        spec = AnalogSpec()
        assert spec.g_min < spec.g_max

    def test_validation(self):
        with pytest.raises(CrossbarError):
            AnalogSpec(g_min=1e-3, g_max=1e-6)
        with pytest.raises(CrossbarError):
            AnalogSpec(levels=-1)
        with pytest.raises(CrossbarError):
            AnalogSpec(sigma=-0.1)
        with pytest.raises(CrossbarError):
            AnalogSpec(v_read=0.0)


class TestIdealVMM:
    def test_matches_numpy_matmul(self):
        xbar = AnalogCrossbar(4, 3)
        w = example_weights()
        xbar.program(w)
        x = np.array([0.5, 1.0, 0.25, 0.8])
        assert np.allclose(xbar.matvec(x), x @ w)

    def test_negative_weights_supported_via_mapping(self):
        xbar = AnalogCrossbar(2, 2)
        w = np.array([[-5.0, 3.0], [2.0, -1.0]])
        xbar.program(w)
        x = np.array([1.0, 0.5])
        assert np.allclose(xbar.matvec(x), x @ w)

    def test_zero_input_zero_output(self):
        xbar = AnalogCrossbar(3, 2)
        xbar.program(np.ones((3, 2)))
        assert np.allclose(xbar.matvec(np.zeros(3)), 0.0)

    def test_constant_matrix(self):
        xbar = AnalogCrossbar(3, 2)
        xbar.program(np.full((3, 2), 4.0))
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(xbar.matvec(x), x @ np.full((3, 2), 4.0))

    def test_conductances_within_window(self):
        xbar = AnalogCrossbar(4, 3)
        xbar.program(example_weights())
        g = xbar.conductances
        assert (g >= xbar.spec.g_min - 1e-18).all()
        assert (g <= xbar.spec.g_max + 1e-18).all()

    def test_shape_validation(self):
        xbar = AnalogCrossbar(4, 3)
        with pytest.raises(CrossbarError):
            xbar.program(np.ones((3, 4)))
        xbar.program(example_weights())
        with pytest.raises(CrossbarError):
            xbar.matvec(np.ones(5))

    def test_non_finite_weights_rejected(self):
        xbar = AnalogCrossbar(2, 2)
        with pytest.raises(CrossbarError):
            xbar.program(np.array([[1.0, np.inf], [0.0, 0.0]]))


class TestNonIdealities:
    def test_quantisation_error_bounded(self):
        ideal = AnalogCrossbar(4, 3)
        coarse = AnalogCrossbar(4, 3, AnalogSpec(levels=5))
        w = example_weights()
        ideal.program(w)
        coarse.program(w)
        x = np.array([0.3, 0.9, 0.1, 0.5])
        error = np.abs(coarse.matvec(x) - ideal.matvec(x)).max()
        assert 0 < error < 2.0

    def test_more_levels_less_error(self):
        w = example_weights()
        x = np.array([0.3, 0.9, 0.1, 0.5])
        errors = []
        for levels in (4, 16, 256):
            xbar = AnalogCrossbar(4, 3, AnalogSpec(levels=levels))
            xbar.program(w)
            errors.append(np.abs(xbar.matvec(x) - x @ w).max())
        assert errors[0] > errors[1] > errors[2]

    def test_programming_noise_reproducible_by_seed(self):
        spec = AnalogSpec(sigma=0.2)
        a = AnalogCrossbar(4, 3, spec, seed=9)
        b = AnalogCrossbar(4, 3, spec, seed=9)
        a.program(example_weights())
        b.program(example_weights())
        assert np.allclose(a.conductances, b.conductances)

    def test_noise_perturbs_result(self):
        xbar = AnalogCrossbar(4, 3, AnalogSpec(sigma=0.2), seed=1)
        xbar.program(example_weights())
        x = np.array([0.3, 0.9, 0.1, 0.5])
        assert not np.allclose(xbar.matvec(x), x @ example_weights())

    def test_wire_resistance_attenuates(self):
        xbar = AnalogCrossbar(4, 3)
        w = np.abs(example_weights())
        xbar.program(w)
        x = np.array([1.0, 1.0, 1.0, 1.0])
        ideal = xbar.matvec(x)
        wired = xbar.matvec(x, wire_resistance=20.0)
        assert (wired < ideal + 1e-12).all()
        # Small wire resistance converges to the ideal result.
        nearly = xbar.matvec(x, wire_resistance=1e-6)
        assert np.allclose(nearly, ideal, rtol=1e-4)


class TestBatchedVMM:
    def test_matvec_many_matches_per_vector(self):
        rng = np.random.default_rng(5)
        xbar = AnalogCrossbar(4, 3)
        xbar.program(example_weights())
        batch = rng.uniform(0.0, 1.0, size=(7, 4))
        for wr in (None, 10.0):
            many = xbar.matvec_many(batch, wire_resistance=wr)
            singles = np.stack(
                [xbar.matvec(x, wire_resistance=wr) for x in batch])
            assert many.shape == (7, 3)
            assert np.allclose(many, singles, rtol=1e-10)

    def test_column_currents_many_single_factorization(self):
        from repro.crossbar import clear_factorization_cache
        from repro.crossbar.solver import _CACHE_MISS

        xbar = AnalogCrossbar(6, 5)
        xbar.program(np.abs(np.random.default_rng(2).normal(size=(6, 5))))
        batch = np.random.default_rng(3).uniform(0, 1, size=(9, 6))
        clear_factorization_cache()
        before = _CACHE_MISS.value
        currents = xbar.column_currents_many(batch, wire_resistance=5.0)
        assert currents.shape == (9, 5)
        assert _CACHE_MISS.value == before + 1

    def test_matvec_many_rejects_bad_shape(self):
        xbar = AnalogCrossbar(4, 3)
        with pytest.raises(CrossbarError):
            xbar.matvec_many(np.zeros((2, 5)))
        with pytest.raises(CrossbarError):
            xbar.matvec_many(np.zeros(4))  # 1-D belongs to matvec


class TestCostModel:
    def test_latency_is_one_pulse(self):
        xbar = AnalogCrossbar(64, 64)
        assert xbar.latency() == xbar.technology.write_time

    def test_read_energy_scales_with_input(self):
        xbar = AnalogCrossbar(4, 3)
        xbar.program(np.abs(example_weights()))
        low = xbar.read_energy(np.full(4, 0.1))
        high = xbar.read_energy(np.full(4, 1.0))
        assert high > low > 0

    def test_area(self):
        xbar = AnalogCrossbar(10, 10)
        assert xbar.area() == pytest.approx(100 * xbar.technology.cell_area)


class TestDifferential:
    def test_signed_vmm(self):
        diff = DifferentialCrossbar(4, 3)
        w = example_weights()
        diff.program(w)
        x = np.array([0.5, 1.0, 0.25, 0.8])
        assert np.allclose(diff.matvec(x), x @ w)

    def test_all_negative_weights(self):
        diff = DifferentialCrossbar(2, 2)
        w = np.array([[-1.0, -2.0], [-3.0, -4.0]])
        diff.program(w)
        x = np.array([1.0, 1.0])
        assert np.allclose(diff.matvec(x), x @ w)

    def test_area_doubles(self):
        diff = DifferentialCrossbar(4, 4)
        assert diff.area() == pytest.approx(2 * diff.positive.area())

    def test_energy_sums_halves(self):
        diff = DifferentialCrossbar(4, 3)
        diff.program(example_weights())
        x = np.array([0.5, 1.0, 0.25, 0.8])
        assert diff.read_energy(x) == pytest.approx(
            diff.positive.read_energy(x) + diff.negative.read_energy(x)
        )

    def test_shape_validation(self):
        with pytest.raises(CrossbarError):
            DifferentialCrossbar(2, 2).program(np.ones((3, 3)))
