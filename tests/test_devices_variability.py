"""Tests for process-variation sampling."""

import pytest

from repro.devices import (
    IdealBipolarMemristor,
    VariabilityModel,
    VariationSpec,
    resistance_spread,
)
from repro.errors import DeviceError


class TestVariationSpec:
    def test_defaults_non_negative(self):
        spec = VariationSpec()
        assert spec.sigma_r_on >= 0
        assert spec.sigma_v_set >= 0

    def test_rejects_negative_sigma(self):
        with pytest.raises(DeviceError):
            VariationSpec(sigma_r_on=-0.1)


class TestSampling:
    def test_sample_is_valid_device(self):
        model = VariabilityModel(seed=1)
        device = model.sample()
        assert device.r_on < device.r_off
        assert device.thresholds.v_set > 0 > device.thresholds.v_reset

    def test_seeded_reproducibility(self):
        a = VariabilityModel(seed=42).sample()
        b = VariabilityModel(seed=42).sample()
        assert a.r_on == pytest.approx(b.r_on)
        assert a.thresholds.v_set == pytest.approx(b.thresholds.v_set)

    def test_different_seeds_differ(self):
        a = VariabilityModel(seed=1).sample()
        b = VariabilityModel(seed=2).sample()
        assert a.r_on != b.r_on

    def test_zero_sigma_pins_nominal(self):
        nominal = IdealBipolarMemristor(r_on=2e3, r_off=2e6)
        spec = VariationSpec(0.0, 0.0, 0.0, 0.0)
        device = VariabilityModel(nominal, spec, seed=0).sample()
        assert device.r_on == pytest.approx(2e3)
        assert device.r_off == pytest.approx(2e6)
        assert device.thresholds.v_set == pytest.approx(nominal.thresholds.v_set)

    def test_sample_many_count(self):
        devices = VariabilityModel(seed=0).sample_many(25)
        assert len(devices) == 25

    def test_sample_many_rejects_negative(self):
        with pytest.raises(DeviceError):
            VariabilityModel(seed=0).sample_many(-1)

    def test_iter_samples_stream(self):
        stream = VariabilityModel(seed=0).iter_samples()
        first = next(stream)
        second = next(stream)
        assert first.r_on != second.r_on

    def test_population_mean_near_nominal(self):
        model = VariabilityModel(seed=7)
        devices = model.sample_many(500)
        spread = resistance_spread(devices)
        # Lognormal with sigma 0.15: mean within ~5% of nominal e^{s^2/2}.
        assert spread["r_on_mean"] == pytest.approx(
            model.nominal.r_on, rel=0.10
        )


class TestResistanceSpread:
    def test_keys(self):
        spread = resistance_spread(VariabilityModel(seed=0).sample_many(10))
        assert set(spread) == {
            "r_on_mean", "r_on_std", "r_off_mean", "r_off_std", "min_window"
        }

    def test_min_window_positive(self):
        spread = resistance_spread(VariabilityModel(seed=0).sample_many(100))
        assert spread["min_window"] > 1.0

    def test_variation_shrinks_window(self):
        tight = resistance_spread(
            VariabilityModel(spec=VariationSpec(0.01, 0.01, 0, 0), seed=0).sample_many(200)
        )
        wide = resistance_spread(
            VariabilityModel(spec=VariationSpec(0.5, 0.5, 0, 0), seed=0).sample_many(200)
        )
        assert wide["min_window"] < tight["min_window"]

    def test_empty_population_rejected(self):
        with pytest.raises(DeviceError):
            resistance_spread([])
