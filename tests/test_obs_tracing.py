"""Unit tests for span tracing: nesting, sim-cost roll-up, exception safety."""

import pytest

from repro.errors import LogicError
from repro.obs.tracing import NULL_SPAN, Span, Tracer, get_tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestDisabledTracer:
    def test_disabled_by_default(self):
        assert Tracer().enabled is False

    def test_span_is_shared_noop(self):
        t = Tracer()
        ctx = t.span("anything", attr=1)
        assert ctx is NULL_SPAN
        with ctx as span:
            span.add_sim(energy=1.0)   # must be accepted and ignored
            span.set_attr("k", "v")
        assert t.roots == []
        assert t.current is None

    def test_add_sim_noop(self):
        t = Tracer()
        t.add_sim(energy=5.0)  # no span, disabled: silently ignored


class TestNesting:
    def test_tree_structure(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["a", "b"]
        assert [c.name for c in root.children[0].children] == ["a1"]
        assert [s.name for s in tracer.iter_spans()] == ["root", "a", "a1", "b"]

    def test_current_tracks_stack(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_wall_time_monotone(self, tracer):
        with tracer.span("x") as span:
            pass
        assert span.end is not None
        assert span.wall_time >= 0.0

    def test_reset(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestSimCosts:
    def test_add_sim_charges_innermost(self, tracer):
        with tracer.span("outer") as outer:
            tracer.add_sim(energy=1.0, latency=2.0, steps=3)
            with tracer.span("inner") as inner:
                tracer.add_sim(energy=10.0)
        assert outer.sim_energy == 1.0
        assert inner.sim_energy == 10.0

    def test_totals_roll_up_children(self, tracer):
        with tracer.span("outer") as outer:
            outer.add_sim(energy=1.0, latency=0.5, steps=1)
            with tracer.span("inner") as inner:
                inner.add_sim(energy=2.0, latency=1.5, steps=4)
        assert outer.total_sim_energy == pytest.approx(3.0)
        assert outer.total_sim_latency == pytest.approx(2.0)
        assert outer.total_sim_steps == 5
        assert inner.total_sim_energy == pytest.approx(2.0)

    def test_as_dict(self, tracer):
        with tracer.span("outer", workload="dna") as outer:
            outer.add_sim(energy=1.0)
            with tracer.span("inner"):
                pass
        doc = outer.as_dict()
        assert doc["name"] == "outer"
        assert doc["attrs"] == {"workload": "dna"}
        assert doc["sim_energy_j"] == 1.0
        assert [c["name"] for c in doc["children"]] == ["inner"]


class TestExceptionSafety:
    def test_exception_closes_span_and_propagates(self, tracer):
        with pytest.raises(LogicError):
            with tracer.span("boom"):
                raise LogicError("electrical mismatch")
        span = tracer.roots[0]
        assert span.end is not None
        assert span.error == "LogicError: electrical mismatch"
        assert tracer.current is None  # stack unwound

    def test_sibling_after_exception_is_root_level(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("first"):
                raise ValueError("x")
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]


class TestRender:
    def test_render_contains_names_and_costs(self, tracer):
        with tracer.span("phase") as span:
            span.add_sim(energy=1e-12, latency=1e-9, steps=7)
        text = tracer.render()
        assert "phase" in text
        assert "wall=" in text and "simE=" in text and "simT=" in text
        assert "steps=7" in text

    def test_render_empty(self):
        assert "no spans" in Tracer().render()


class TestGlobalTracer:
    def test_shared_instance(self):
        assert get_tracer() is get_tracer()

    def test_energy_trace_forwards_into_spans(self):
        from repro.sim.trace import EnergyTrace

        tracer = get_tracer()
        tracer.enable()
        try:
            with tracer.span("functional") as span:
                trace = EnergyTrace()
                trace.record("logic", "x", 4, 4e-15, 4e-10)
            assert span.sim_energy == pytest.approx(4e-15)
            assert span.sim_latency == pytest.approx(4e-10)
            assert span.sim_steps == 4
        finally:
            tracer.disable()
            tracer.reset()
