"""Tests for the Fig 1 working-set classification model."""

import pytest

from repro.core import (
    ArchitectureClass,
    class_cost,
    classify_all,
    ordering_is_monotonic,
)
from repro.core.classification import CLASS_PARAMETERS
from repro.errors import ArchitectureError
from repro.spec import TABLE1


class TestClassParameters:
    def test_all_classes_parameterised(self):
        assert set(CLASS_PARAMETERS) == set(ArchitectureClass)

    def test_distances_strictly_decrease(self):
        distances = [CLASS_PARAMETERS[c].distance for c in ArchitectureClass]
        assert distances == sorted(distances, reverse=True)
        assert len(set(distances)) == len(distances)


class TestClassCost:
    def test_cim_is_compute_dominated(self):
        cost = class_cost(ArchitectureClass.COMPUTATION_IN_MEMORY)
        assert cost.communication_fraction < 0.01
        assert cost.energy_per_op == pytest.approx(
            TABLE1.interconnect.compute_energy, rel=0.01)

    def test_main_memory_is_communication_dominated(self):
        cost = class_cost(ArchitectureClass.MAIN_MEMORY)
        assert cost.communication_fraction > 0.9

    def test_data_intensity_scales_communication(self):
        lean = class_cost(ArchitectureClass.CACHE, operands_per_op=1)
        heavy = class_cost(ArchitectureClass.CACHE, operands_per_op=10)
        assert heavy.energy_per_op > lean.energy_per_op
        assert heavy.communication_fraction > lean.communication_fraction

    def test_zero_operands_pure_compute(self):
        cost = class_cost(ArchitectureClass.MAIN_MEMORY, operands_per_op=0)
        assert cost.communication_fraction == 0.0

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            class_cost(ArchitectureClass.CACHE, operands_per_op=-1)
        with pytest.raises(ArchitectureError):
            class_cost(ArchitectureClass.CACHE, word_bits=0)


class TestFig1Ordering:
    def test_five_classes_in_order(self):
        costs = classify_all()
        assert [c.architecture for c in costs] == list(ArchitectureClass)

    def test_monotonic_improvement(self):
        """The Fig 1 claim: every step toward the data strictly improves
        energy and latency per operation."""
        assert ordering_is_monotonic(classify_all())

    def test_monotonic_across_data_intensities(self):
        for operands in (1, 3, 10, 100):
            assert ordering_is_monotonic(classify_all(operands_per_op=operands))

    def test_cim_vs_main_memory_orders_of_magnitude(self):
        costs = classify_all()
        first, last = costs[0], costs[-1]
        assert first.energy_per_op / last.energy_per_op > 100

    def test_non_monotonic_detected(self):
        costs = classify_all()
        assert not ordering_is_monotonic(list(reversed(costs)))
