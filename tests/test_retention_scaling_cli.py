"""Tests for the retention model, scaling study and CLI."""

import math

import pytest

from repro.core import addition_sweep, coverage_sweep
from repro.devices import RetentionModel, extrapolate_from_bake
from repro.errors import DeviceError, WorkloadError


class TestRetentionModel:
    def test_ten_years_at_room_temperature(self):
        """The Section IV.A claim: >10-year retention at operating
        temperature, with mid-range VCM/ECM activation energy."""
        model = RetentionModel()
        assert model.meets_ten_years(300.0)
        assert model.retention_years(300.0) > 10

    def test_retention_collapses_when_hot(self):
        model = RetentionModel()
        assert model.retention_time(450.0) < model.retention_time(300.0) / 1e3

    def test_arrhenius_form(self):
        model = RetentionModel(activation_energy=1.0, attempt_time=1e-14)
        from repro.devices import BOLTZMANN_EV

        expected = 1e-14 * math.exp(1.0 / (BOLTZMANN_EV * 350.0))
        assert model.retention_time(350.0) == pytest.approx(expected)

    def test_state_decay(self):
        model = RetentionModel()
        t_ret = model.retention_time(400.0)
        x = model.state_after(1.0, t_ret, 400.0)
        assert x == pytest.approx(math.exp(-1.0))

    def test_state_decay_zero_time(self):
        assert RetentionModel().state_after(0.7, 0.0, 300.0) == pytest.approx(0.7)

    def test_max_operating_temperature(self):
        model = RetentionModel()
        t_max = model.max_operating_temperature(years=10.0)
        # At exactly t_max the criterion holds with equality.
        assert model.retention_years(t_max) == pytest.approx(10.0, rel=1e-6)
        assert model.meets_ten_years(t_max - 1.0)
        assert not model.meets_ten_years(t_max + 5.0)

    def test_higher_ea_retains_longer(self):
        weak = RetentionModel(activation_energy=0.9)
        strong = RetentionModel(activation_energy=1.2)
        assert strong.retention_time(300.0) > weak.retention_time(300.0)

    def test_validation(self):
        with pytest.raises(DeviceError):
            RetentionModel(activation_energy=0.0)
        with pytest.raises(DeviceError):
            RetentionModel().retention_time(-10.0)
        with pytest.raises(DeviceError):
            RetentionModel().state_after(2.0, 1.0, 300.0)
        with pytest.raises(DeviceError):
            RetentionModel().max_operating_temperature(0.0)


class TestBakeExtrapolation:
    def test_bake_to_operating(self):
        """A cell retaining 1 hour at 250 C extrapolates to years at
        85 C — the published measurement methodology."""
        t_op = extrapolate_from_bake(
            bake_temperature_k=523.0,
            bake_retention_s=3600.0,
            operating_temperature_k=358.0,
        )
        assert t_op > 3600.0 * 1e3

    def test_same_temperature_identity(self):
        assert extrapolate_from_bake(400.0, 100.0, 400.0) == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(DeviceError):
            extrapolate_from_bake(-1.0, 100.0, 300.0)
        with pytest.raises(DeviceError):
            extrapolate_from_bake(400.0, 0.0, 300.0)


class TestScalingStudy:
    def test_coverage_sweep_linear_growth(self):
        rows = coverage_sweep(coverages=(10, 20, 40))
        conv_times = [r["conv_time"] for r in rows]
        assert conv_times[1] == pytest.approx(2 * conv_times[0], rel=0.01)
        assert conv_times[2] == pytest.approx(4 * conv_times[0], rel=0.01)

    def test_cim_advantage_sustained(self):
        """The Big-Data point: at fixed silicon, CIM's time advantage is
        sustained at every data volume (and the absolute gap widens)."""
        rows = coverage_sweep(coverages=(10, 50, 200))
        for row in rows:
            assert row["time_advantage"] > 10
            assert row["energy_advantage"] > 1e3
        gaps = [r["conv_time"] - r["cim_time"] for r in rows]
        assert gaps == sorted(gaps)

    def test_addition_sweep_energy_separation(self):
        rows = addition_sweep(counts=(10**4, 10**5))
        for row in rows:
            assert row["energy_advantage"] > 100
            # Both machines run one round: time independent of count.
        assert rows[0]["conv_time"] == pytest.approx(rows[1]["conv_time"])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            coverage_sweep(coverages=())
        with pytest.raises(WorkloadError):
            addition_sweep(counts=())


class TestCLI:
    def run_cli(self, *argv):
        import contextlib
        import io

        from repro.__main__ import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_table2(self):
        code, out = self.run_cli("table2")
        assert code == 0
        assert "9.2570e-21" in out

    def test_table2_max_packing(self):
        code, out = self.run_cli("table2", "--packing", "max")
        assert code == 0
        assert "Table 2" in out

    def test_machines(self):
        code, out = self.run_cli("machines")
        assert code == 0
        assert "conventional-dna" in out

    def test_fig1(self):
        code, out = self.run_cli("fig1", "--operands", "5")
        assert code == 0
        assert "computation-in-memory" in out

    def test_fig4(self):
        code, out = self.run_cli("fig4")
        assert code == 0
        assert "Vth2=1.20" in out

    def test_fig5(self):
        code, out = self.run_cli("fig5")
        assert code == 0
        assert "IMP" in out

    def test_scaling(self):
        code, out = self.run_cli("scaling")
        assert code == 0
        assert "coverage" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            self.run_cli("nonsense")
