"""The board layer: registry, identity, cost accounting, noise chain.

Bit-identity of the ideal board against the pre-refactor direct paths
is property-tested separately in ``test_property_board.py``; this file
covers the board contract itself — construction, digests, the registry
and environment default, stats/ledger accounting, the noisy instrument
chain (quantization, variability, faults, endurance), the hardware
stub, and the consumer seams (analog crossbar, engine executor, memory,
read margin, DSE campaign).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analog.crossbar import AnalogCrossbar, AnalogSpec, DifferentialCrossbar
from repro.board import (
    BOARDS,
    Board,
    DEFAULT_BOARD_ENV,
    HardwareStubBoard,
    IdealSimBoard,
    InstrumentProfile,
    NoisyInstrumentBoard,
    board_catalog,
    default_board_kind,
    make_board,
)
from repro.board.campaign import (
    evaluate_board_point,
    point_digest,
    split_overrides,
)
from repro.crossbar.memory import CrossbarMemory
from repro.crossbar.sneak import read_margin
from repro.engine import kernel_for_program, run_kernel
from repro.errors import BoardError, CrossbarError, EngineError
from repro.logic.adders import ripple_adder_program
from repro.reliability.faults import FaultType
from repro.spec import TABLE1


def _conductances(rows=4, cols=4, seed=0):
    return np.random.default_rng(seed).uniform(1e-6, 1e-3, (rows, cols))


class TestRegistry:
    def test_three_kinds_registered(self):
        assert set(BOARDS) == {"ideal", "noisy", "hardware"}
        for cls in BOARDS.values():
            assert issubclass(cls, Board)

    def test_make_board_builds_each_kind(self):
        for kind in BOARDS:
            board = make_board(kind, 4, 5)
            assert board.kind == kind
            assert (board.rows, board.cols) == (4, 5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(BoardError, match="unknown board kind"):
            make_board("quantum", 4, 4)

    def test_bad_options_rejected(self):
        with pytest.raises(BoardError, match="invalid options"):
            make_board("ideal", 4, 4, profile=InstrumentProfile())

    def test_default_kind_env(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_BOARD_ENV, raising=False)
        assert default_board_kind() == "ideal"
        monkeypatch.setenv(DEFAULT_BOARD_ENV, "noisy")
        assert default_board_kind() == "noisy"
        assert make_board(None, 4, 4).kind == "noisy"
        monkeypatch.setenv(DEFAULT_BOARD_ENV, "bogus")
        with pytest.raises(BoardError, match="REPRO_BOARD"):
            default_board_kind()

    def test_catalog_lists_every_kind_once(self):
        catalog = board_catalog()
        assert [entry["kind"] for entry in catalog] == sorted(BOARDS)
        assert sum(entry["default"] for entry in catalog) == 1
        for entry in catalog:
            assert len(entry["digest"]) == 64
            assert entry["summary"]


class TestIdentity:
    def test_digest_stable_and_distinct(self):
        a = IdealSimBoard(4, 4)
        assert a.digest == IdealSimBoard(4, 4).digest
        assert a.digest != IdealSimBoard(4, 5).digest
        assert a.digest != NoisyInstrumentBoard(4, 4).digest
        assert a.short_digest == a.digest[:12]

    def test_digest_folds_spec(self):
        derived = TABLE1.derive({"memristor.write_energy": 2e-15})
        assert IdealSimBoard(4, 4).digest != IdealSimBoard(4, 4, spec=derived).digest

    def test_digest_folds_config(self):
        base = NoisyInstrumentBoard(4, 4, seed=0)
        other = NoisyInstrumentBoard(
            4, 4, profile=InstrumentProfile(variability=0.1), seed=0
        )
        assert base.digest != other.digest

    def test_config_json_serialisable(self):
        for kind in BOARDS:
            json.dumps(make_board(kind, 4, 4).config())

    def test_describe_names_kind_and_digests(self):
        board = IdealSimBoard(3, 7)
        text = board.describe()
        assert "ideal" in text and "3x7" in text
        assert board.short_digest in text

    def test_bad_geometry_rejected(self):
        with pytest.raises(BoardError, match="positive"):
            IdealSimBoard(0, 4)


class TestIdealBoard:
    def test_program_read_round_trip(self):
        board = IdealSimBoard(4, 4)
        g = _conductances()
        board.program(g)
        assert np.array_equal(board.read_conductances(), g)

    def test_program_validates_shape_and_values(self):
        board = IdealSimBoard(4, 4)
        with pytest.raises(BoardError, match="shape"):
            board.program(np.zeros((3, 4)))
        bad = np.zeros((4, 4))
        bad[1, 2] = -1.0
        with pytest.raises(BoardError, match="non-negative"):
            board.program(bad)

    def test_pulse_updates_single_cell(self):
        board = IdealSimBoard(4, 4)
        board.program(_conductances())
        board.pulse(1, 2, 5e-4)
        assert board.read_conductances()[1, 2] == 5e-4
        with pytest.raises(BoardError, match="outside"):
            board.pulse(4, 0, 1e-4)
        with pytest.raises(BoardError, match="finite"):
            board.pulse(0, 0, float("nan"))

    def test_stats_count_operations(self):
        board = IdealSimBoard(4, 4)
        board.program(_conductances())
        board.pulse(0, 0, 1e-4)
        board.column_currents(np.full(4, 0.2))
        board.column_currents_many(np.full((3, 4), 0.2))
        stats = board.stats
        assert stats.programs == 1
        assert stats.pulses == 1
        assert stats.device_writes == 17
        assert stats.matvec_words == 4
        assert stats.energy > 0 and stats.latency > 0

    def test_reset_clears_array_and_stats(self):
        board = IdealSimBoard(4, 4)
        stats = board.stats
        board.program(_conductances())
        board.reset()
        assert board.stats is stats  # reset in place, identity preserved
        assert stats.programs == 0 and stats.energy == 0.0
        assert np.array_equal(board.read_conductances(), np.zeros((4, 4)))

    def test_ledger_carries_provenance(self):
        board = IdealSimBoard(4, 4)
        board.program(_conductances())
        rows = board.ledger().as_rows()
        assert any("device writes" in row["provenance"] for row in rows)

    def test_charge_hook_accumulates(self):
        board = IdealSimBoard(4, 4)
        board.charge(energy=1e-12, latency=2e-9, device_writes=3)
        assert board.stats.energy == 1e-12
        assert board.stats.latency == 2e-9
        assert board.stats.device_writes == 3

    def test_read_iv_matches_direct_solver(self):
        from repro.crossbar.solver import solve_with_wire_resistance

        g = _conductances()
        board = IdealSimBoard(4, 4)
        board.program(g)
        drive = ({0: 0.5}, {3: 0.0})
        got = board.read_iv(*drive, wire_resistance=2.0)
        want = solve_with_wire_resistance(g, {0: 0.5}, {3: 0.0},
                                          wire_resistance=2.0)
        assert np.array_equal(got.col_currents, want.col_currents)
        assert board.stats.iv_reads == 1

    def test_imply_machine_runs_on_spec_devices(self):
        machine = IdealSimBoard(4, 4).imply_machine()
        assert machine.technology is TABLE1.memristor


class TestNoisyBoard:
    def test_zero_noise_matches_ideal(self):
        g = _conductances()
        ideal = IdealSimBoard(4, 4)
        noisy = NoisyInstrumentBoard(4, 4, seed=0)
        ideal.program(g)
        noisy.program(g)
        v = np.full(4, 0.2)
        assert np.array_equal(noisy.column_currents(v),
                              ideal.column_currents(v))

    def test_seed_reproducible_and_rng_exclusive(self):
        g = _conductances()
        profile = InstrumentProfile(variability=0.2)
        a = NoisyInstrumentBoard(4, 4, profile=profile, seed=9)
        b = NoisyInstrumentBoard(4, 4, profile=profile, seed=9)
        a.program(g)
        b.program(g)
        assert np.array_equal(a.read_conductances(), b.read_conductances())
        with pytest.raises(BoardError, match="not both"):
            NoisyInstrumentBoard(
                4, 4, rng=np.random.default_rng(0), seed=1
            )

    def test_variability_perturbs_within_range(self):
        g = _conductances()
        board = NoisyInstrumentBoard(
            4, 4, profile=InstrumentProfile(variability=0.3), seed=1
        )
        board.program(g)
        stored = board.read_conductances()
        assert not np.array_equal(stored, g)
        assert (stored >= board.profile.g_min).all()
        assert (stored <= board.profile.g_max).all()

    def test_dac_quantizes_conductances(self):
        board = NoisyInstrumentBoard(
            4, 4, profile=InstrumentProfile(dac_bits=2), seed=0
        )
        board.program(_conductances())
        grid = np.linspace(board.profile.g_min, board.profile.g_max, 4)
        stored = board.read_conductances()
        assert np.isin(stored.round(12), grid.round(12)).all()

    def test_adc_quantizes_currents(self):
        board = NoisyInstrumentBoard(
            4, 4, profile=InstrumentProfile(adc_bits=4, i_max=1e-3), seed=0
        )
        board.program(_conductances())
        currents = board.column_currents(np.full(4, 0.2))
        step = 1e-3 / (2 ** 4 - 1)
        assert np.allclose(currents / step, np.round(currents / step))

    def test_drive_clipped_to_v_max(self):
        g = np.full((2, 2), 1e-4)
        board = NoisyInstrumentBoard(
            2, 2, profile=InstrumentProfile(v_max=0.1), seed=0
        )
        board.program(g)
        clipped = board.column_currents(np.array([5.0, -5.0]))
        expected = np.array([0.1, -0.1]) @ board.read_conductances()
        assert np.allclose(clipped, expected)

    def test_stuck_at_faults_pin_cells(self):
        board = NoisyInstrumentBoard(4, 4, seed=0)
        board.inject_faults({(0, 0): FaultType.SA0, (1, 1): FaultType.SA1})
        board.program(_conductances())
        stored = board.read_conductances()
        assert stored[0, 0] == board.profile.g_min
        assert stored[1, 1] == board.profile.g_max

    def test_transition_faults_block_one_direction(self):
        board = NoisyInstrumentBoard(2, 2, seed=0)
        board.program(np.full((2, 2), 5e-4))
        board.inject_faults({(0, 0): FaultType.TF0, (0, 1): FaultType.TF1})
        g = np.full((2, 2), 5e-4)
        g[0, 0] = 9e-4   # TF0: cannot increase
        g[0, 1] = 1e-4   # TF1: cannot decrease
        board.program(g)
        stored = board.read_conductances()
        assert stored[0, 0] == pytest.approx(5e-4)
        assert stored[0, 1] == pytest.approx(5e-4)

    def test_manufactured_fault_population_seeded(self):
        profile = InstrumentProfile(fault_rate=0.2)
        a = NoisyInstrumentBoard(8, 8, profile=profile, seed=3)
        b = NoisyInstrumentBoard(8, 8, profile=profile, seed=3)
        assert a.faults and a.faults == b.faults

    def test_endurance_wears_cells_out(self):
        board = NoisyInstrumentBoard(
            2, 2, profile=InstrumentProfile(endurance=3), seed=0
        )
        for _ in range(3):
            board.program(np.full((2, 2), 2e-4))
        worn_value = board.read_conductances()[0, 0]
        board.program(np.full((2, 2), 8e-4))
        assert board.read_conductances()[0, 0] == worn_value

    def test_stats_shared_with_inner_solver(self):
        board = NoisyInstrumentBoard(4, 4, seed=0)
        board.program(_conductances())
        board.column_currents(np.full(4, 0.2))
        assert board.stats.programs == 1
        assert board.stats.matvec_words == 1
        board.reset()
        assert board.stats.programs == 0

    def test_profile_validation(self):
        with pytest.raises(BoardError):
            InstrumentProfile(g_min=1e-3, g_max=1e-6)
        with pytest.raises(BoardError):
            InstrumentProfile(dac_bits=40)
        with pytest.raises(BoardError):
            InstrumentProfile(fault_rate=1.5)

    def test_imply_machine_uses_variability(self):
        from repro.devices.base import IdealBipolarMemristor

        profile = InstrumentProfile(variability=0.1, threshold_sigma=0.05)
        machine = NoisyInstrumentBoard(4, 4, profile=profile,
                                       seed=0).imply_machine()
        assert machine._device_factory is not IdealBipolarMemristor
        # Devices sampled from the variability model really do differ.
        a, b = machine.device("x"), machine.device("y")
        assert a.thresholds != b.thresholds or a.r_on != b.r_on


class TestHardwareStub:
    def test_constructible_but_untouchable(self):
        board = HardwareStubBoard(4, 4)
        assert board.digest
        for verb in (
            lambda: board.program(np.zeros((4, 4))),
            lambda: board.pulse(0, 0, 1e-4),
            lambda: board.read_conductances(),
            lambda: board.read_iv({0: 0.5}, {0: 0.0}),
            lambda: board.column_currents(np.zeros(4)),
            lambda: board.column_currents_many(np.zeros((1, 4))),
            lambda: board.reset(),
        ):
            with pytest.raises(BoardError, match="wire protocol"):
                verb()

    def test_transport_in_digest(self):
        assert (HardwareStubBoard(4, 4).digest
                != HardwareStubBoard(4, 4, transport="serial:/dev/ttyUSB0").digest)


class TestAnalogSeam:
    def test_default_board_is_ideal(self):
        xbar = AnalogCrossbar(4, 4)
        assert isinstance(xbar.board, IdealSimBoard)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(CrossbarError, match="geometry"):
            AnalogCrossbar(4, 4, board=IdealSimBoard(4, 5))

    def test_noisy_board_changes_result(self):
        w = np.random.default_rng(0).standard_normal((8, 8))
        x = np.random.default_rng(1).random(8)
        clean = AnalogCrossbar(8, 8, seed=0)
        clean.program(w)
        noisy = AnalogCrossbar(
            8, 8, seed=0,
            board=NoisyInstrumentBoard(
                8, 8, profile=InstrumentProfile(variability=0.3), seed=2
            ),
        )
        noisy.program(w)
        assert not np.allclose(clean.matvec(x), noisy.matvec(x))

    def test_differential_boards_come_in_pairs(self):
        with pytest.raises(CrossbarError, match="pairs"):
            DifferentialCrossbar(4, 4, board=IdealSimBoard(4, 4))
        diff = DifferentialCrossbar(
            4, 4, board=IdealSimBoard(4, 4),
            negative_board=IdealSimBoard(4, 4),
        )
        w = np.random.default_rng(0).standard_normal((4, 4))
        diff.program(w)
        x = np.random.default_rng(1).random(4)
        assert np.allclose(diff.matvec(x), x @ w, atol=1e-6)

    def test_crossbar_charges_board(self):
        xbar = AnalogCrossbar(4, 4)
        xbar.program(np.eye(4))
        xbar.matvec(np.ones(4))
        assert xbar.board.stats.programs == 1
        assert xbar.board.stats.matvec_words == 1


class TestEngineSeam:
    def test_run_kernel_board_implies_electrical(self):
        kernel = kernel_for_program(ripple_adder_program(4))
        board = IdealSimBoard(4, 4)
        result = run_kernel(kernel, {"a": [3, 7], "b": [5, 6]}, board=board)
        assert result.backend == "electrical"
        assert list(result.word("s")) == [8, 13]
        assert board.stats.device_writes == 2 * kernel.step_count

    def test_board_rejected_off_electrical(self):
        kernel = kernel_for_program(ripple_adder_program(4))
        with pytest.raises(EngineError, match="electrical"):
            run_kernel(kernel, {"a": [1], "b": [1]},
                       backend="functional", board=IdealSimBoard(4, 4))

    def test_board_and_executor_exclusive(self):
        from repro.engine.executors import ElectricalBatchExecutor

        kernel = kernel_for_program(ripple_adder_program(4))
        with pytest.raises(EngineError, match="not both"):
            run_kernel(kernel, {"a": [1], "b": [1]},
                       board=IdealSimBoard(4, 4),
                       executor=ElectricalBatchExecutor())

    def test_executor_board_voltages_exclusive(self):
        from repro.engine.executors import ElectricalBatchExecutor
        from repro.logic.imply import ImplyVoltages

        with pytest.raises(EngineError, match="not both"):
            ElectricalBatchExecutor(
                voltages=ImplyVoltages(), board=IdealSimBoard(4, 4)
            )


class TestMemorySeam:
    def test_board_meters_logical_traffic(self):
        board = IdealSimBoard(4, 8)
        memory = CrossbarMemory(4, 8, board=board)
        memory.write_int(0, 0xA5)
        memory.read_int(0)
        assert board.stats.device_writes == 8
        assert board.stats.energy == memory.stats.energy

    def test_sense_word_matches_logical_read_on_ideal(self):
        board = IdealSimBoard(4, 8)
        memory = CrossbarMemory(4, 8, board=board)
        memory.write_int(2, 0b11010010)
        assert memory.sense_word(2) == memory.read_word(2)

    def test_sense_word_requires_board_and_1r(self):
        with pytest.raises(CrossbarError, match="board"):
            CrossbarMemory(4, 8).sense_word(0)
        crs = CrossbarMemory(4, 8, cell_kind="CRS", board=IdealSimBoard(4, 8))
        with pytest.raises(CrossbarError, match="CRS"):
            crs.sense_word(0)

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(CrossbarError, match="geometry"):
            CrossbarMemory(4, 8, board=IdealSimBoard(8, 4))


class TestSneakSeam:
    def test_geometry_mismatch_rejected(self):
        with pytest.raises(CrossbarError, match="geometry"):
            read_margin(8, 8, board=IdealSimBoard(4, 4))

    def test_noisy_board_shifts_margin(self):
        ideal = read_margin(8, 8, board=IdealSimBoard(8, 8))
        noisy = read_margin(
            8, 8,
            board=NoisyInstrumentBoard(
                8, 8, profile=InstrumentProfile(variability=0.3), seed=0
            ),
        )
        assert noisy.margin != ideal.margin


class TestCli:
    def run_cli(self, *argv):
        import contextlib
        import io

        from repro.__main__ import main

        out = io.StringIO()
        with contextlib.redirect_stdout(out):
            code = main(list(argv))
        return code, out.getvalue()

    def test_board_lists_kinds_and_default(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_BOARD_ENV, raising=False)
        code, out = self.run_cli("board")
        assert code == 0
        for kind in BOARDS:
            assert kind in out
        assert "ideal *" in out
        assert DEFAULT_BOARD_ENV in out

    def test_board_env_moves_the_default_marker(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_BOARD_ENV, "noisy")
        code, out = self.run_cli("board")
        assert code == 0
        assert "noisy *" in out
        assert "ideal *" not in out

    def test_board_json_carries_digests(self):
        code, out = self.run_cli("board", "--json")
        assert code == 0
        payload = json.loads(out)
        assert {entry["kind"] for entry in payload["boards"]} == set(BOARDS)
        digests = [entry["digest"] for entry in payload["boards"]]
        assert all(len(digest) == 64 for digest in digests)
        assert len(set(digests)) == len(digests)

    def test_board_spec_override_shifts_digests(self):
        _, base = self.run_cli("board", "--json")
        _, derived = self.run_cli(
            "board", "--json",
            "--spec-override", "memristor.write_energy=2e-15",
        )
        base_digests = {e["kind"]: e["digest"]
                        for e in json.loads(base)["boards"]}
        derived_digests = {e["kind"]: e["digest"]
                           for e in json.loads(derived)["boards"]}
        assert all(base_digests[k] != derived_digests[k]
                   for k in base_digests)

    def test_sweep_over_board_axis(self, tmp_path):
        jsonl = tmp_path / "points.jsonl"
        code, out = self.run_cli(
            "sweep", "--param", "board.variability=0,0.1",
            "--serial", "--no-ledgers", "--jsonl", str(jsonl),
        )
        assert code == 0
        lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
        points = [line for line in lines if "sweep" not in line]
        assert len(points) == 2
        rmse = {point["overrides"]["board.variability"]:
                point["metrics"]["board.rmse"] for point in points}
        assert rmse[0] == 0.0 and rmse[0.1] > 0.0


class TestCampaign:
    def test_split_overrides(self):
        spec_part, board_part = split_overrides(
            {"memristor.write_time": 1e-9, "board.variability": 0.1,
             "board.kind": "noisy"}
        )
        assert spec_part == {"memristor.write_time": 1e-9}
        assert board_part == {"variability": 0.1, "kind": "noisy"}

    def test_point_digest_extends_only_for_board_axes(self):
        assert point_digest("abc", {}) == "abc"
        extended = point_digest("abc", {"variability": 0.1})
        assert extended.startswith("abc+board:")
        assert extended != point_digest("abc", {"variability": 0.2})

    def test_ideal_point_is_error_free(self):
        metrics = evaluate_board_point(TABLE1, {"kind": "ideal"})
        assert metrics["board.rmse"] == 0.0
        assert metrics["board.max_abs_error"] == 0.0

    def test_variability_monotone_in_error_and_seeded(self):
        lo = evaluate_board_point(TABLE1, {"variability": 0.05, "seed": 1})
        hi = evaluate_board_point(TABLE1, {"variability": 0.3, "seed": 1})
        again = evaluate_board_point(TABLE1, {"variability": 0.3, "seed": 1})
        assert 0 < lo["board.rmse"] < hi["board.rmse"]
        assert hi == again
        assert hi["board.energy_j"] > 0

    def test_unknown_axis_and_kind_rejected(self):
        with pytest.raises(BoardError, match="unknown board parameter"):
            evaluate_board_point(TABLE1, {"wobble": 1})
        with pytest.raises(BoardError, match="kind"):
            evaluate_board_point(TABLE1, {"kind": "hardware"})

    def test_sweep_keys_board_points_distinctly(self):
        from repro.analysis.dse import clear_cache, run_sweep

        clear_cache()
        result = run_sweep(
            {"board.variability": [0.0, 0.1]},
            serial=True, keep_ledgers=False,
        )
        digests = {point.spec_digest for point in result.points}
        assert len(digests) == 2
        assert all("board.rmse" in point.metrics for point in result.points)
