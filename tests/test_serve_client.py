"""The unified client facade: one Client surface, three transports.

``api.connect(target=...)`` must hand back the same protocol object
whether requests are served by an in-process ``KernelServer``, a
sharded ``ClusterServer``, or a real JSONL wire loop — same results,
same typed errors, same ``submit/submit_many/stats/close`` shape.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.errors import (
    DeadlineExceeded,
    EngineError,
    ServeError,
    ServerOverloaded,
)
from repro.serve.client import (
    Client,
    JsonlClient,
    ServerClient,
    _result_from_wire,
    connect,
)
from repro.serve.cluster import ClusterServer
from repro.serve.server import KernelServer


def add_request(request_id, a, b):
    return api.request(id=request_id, kernel="adder", width=8,
                       operands={"a": [a], "b": [b]})


class TestConnectTargets:
    def test_local_default_fronts_a_kernel_server(self):
        with connect("local", max_wait_us=0) as client:
            assert isinstance(client, ServerClient)
            assert isinstance(client.server, KernelServer)
            result = client.submit(add_request("one", 2, 3))
            assert result.outputs["sum"] == (5,)
            assert client.stats()["transport"] == "local"

    def test_local_upgrades_to_cluster_when_sharded(self):
        with connect("local", shards=2, quota=8, max_wait_us=0) as client:
            assert isinstance(client.server, ClusterServer)
            assert client.server.shards == 2
            stats = client.stats()
            assert stats["transport"] == "cluster"
            assert stats["quota"] == 8

    def test_cluster_target_is_always_sharded(self):
        with connect("cluster", max_wait_us=0) as client:
            assert isinstance(client.server, ClusterServer)
            result = client.submit(add_request("c", 10, 20))
            assert result.outputs["sum"] == (30,)

    def test_instance_target_wraps_without_options(self):
        with connect(KernelServer(max_wait_us=0)) as client:
            assert client.submit(add_request("i", 1, 1)).outputs["sum"] == (2,)
        with pytest.raises(ServeError, match="not both"):
            connect(KernelServer(), max_batch_size=4)
        with pytest.raises(ServeError, match="not both"):
            connect(KernelServer(), shards=2)

    def test_unknown_target_raises(self):
        with pytest.raises(ServeError, match="grpc"):
            connect("grpc")

    def test_every_transport_satisfies_the_protocol(self):
        with connect("local", max_wait_us=0) as local, \
                connect("jsonl", max_wait_us=0) as jsonl:
            assert isinstance(local, Client)
            assert isinstance(jsonl, Client)

    def test_api_connect_is_the_facade_entry_point(self):
        with api.connect(target="local", max_wait_us=0) as client:
            assert isinstance(client, Client)
            assert client.submit(add_request("a", 4, 4)).outputs["sum"] == (8,)


class TestServerClient:
    def test_submit_many_preserves_order_and_errors(self):
        with connect("local", max_wait_us=0) as client:
            results = client.submit_many(
                [add_request(f"r{i}", i, i) for i in range(4)])
            assert [r.id for r in results] == ["r0", "r1", "r2", "r3"]
            outcomes = client.submit_many(
                [add_request("ok", 1, 2),
                 api.request(id="bad", kernel="no-such-kernel", width=8)],
                return_exceptions=True)
            assert outcomes[0].outputs["sum"] == (3,)
            # In-process the engine's own typed error comes through;
            # over the wire it would arrive as a ServeError record.
            assert isinstance(outcomes[1], EngineError)

    def test_close_is_idempotent_and_final(self):
        client = connect("local", max_wait_us=0)
        client.close()
        client.close()
        with pytest.raises(ServeError, match="closed"):
            client.submit(add_request("late", 1, 1))


class TestJsonlClient:
    def test_round_trip_restores_caller_id(self):
        with connect("jsonl", max_wait_us=0) as client:
            assert isinstance(client, JsonlClient)
            result = client.submit(add_request("mine", 7, 8))
            # The wire used a minted id; the caller sees their own.
            assert result.id == "mine"
            assert result.outputs["sum"] == (15,)
            stats = client.stats()
            assert stats["transport"] == "jsonl"
            assert stats["counts"].get("ok") == 1
            assert stats["pending"] == 0

    def test_matches_in_process_answers(self):
        requests = [add_request(f"r{i}", i, 2 * i) for i in range(6)]
        with connect("jsonl", max_wait_us=0) as wire, \
                connect("local", max_wait_us=0) as local:
            over_wire = wire.submit_many(requests)
            in_process = local.submit_many(requests)
        for w, p in zip(over_wire, in_process):
            assert w.id == p.id
            assert w.outputs == p.outputs
            assert w.energy == p.energy  # json round-trips doubles exactly

    def test_clustered_jsonl(self):
        with connect("jsonl", shards=2, max_wait_us=0) as client:
            result = client.submit(add_request("sharded", 3, 9))
            assert result.outputs["sum"] == (12,)

    def test_wire_errors_map_to_typed_exceptions(self):
        with connect("jsonl", max_wait_us=0) as client:
            with pytest.raises(ServeError):
                client.submit(
                    api.request(id="bad", kernel="no-such-kernel", width=8))
            # The loop keeps serving after an error record.
            assert client.submit(add_request("after", 1, 1)).outputs[
                "sum"] == (2,)

    def test_error_record_mapping_table(self):
        """rejected/deadline/error wire statuses -> the typed errors."""
        request = add_request("x", 1, 1)
        with pytest.raises(ServerOverloaded, match="full"):
            _result_from_wire({"status": "rejected", "error": "full"}, request)
        with pytest.raises(DeadlineExceeded, match="late"):
            _result_from_wire({"status": "deadline", "error": "late"}, request)
        with pytest.raises(ServeError, match="boom"):
            _result_from_wire({"status": "error", "error": "boom"}, request)

    def test_close_drains_then_refuses(self):
        client = connect("jsonl", max_wait_us=0)
        client.submit(add_request("pre", 1, 2))
        client.close()
        assert client.stats()["closed"]
        with pytest.raises(ServeError, match="closed"):
            client.submit(add_request("post", 1, 2))


class TestApiRequestHelper:
    def test_builds_a_serve_request(self):
        request = api.request(kernel="Adder", id="r1", width=16,
                              operands={"a": [1.0, 2], "b": (3, 4)},
                              tenant="team-a", deadline_s=2.5)
        assert request.kernel == "Adder"
        assert request.operands == {"a": (1, 2), "b": (3, 4)}
        assert request.tenant == "team-a"
        assert request.deadline_s == 2.5
        assert request.backend == "auto"

    def test_tenant_is_attribution_not_content(self):
        plain = api.request(kernel="adder", operands={"a": [1], "b": [2]})
        tagged = api.request(kernel="adder", operands={"a": [1], "b": [2]},
                             tenant="team-b")
        assert plain.digest == tagged.digest

    def test_evaluate_requests_pin_functional_backend(self):
        request = api.request(kind="evaluate", params={"application": "dna"})
        assert request.backend == "functional"
