"""Trace-context propagation (ISSUE 6 tentpole, part 1)."""

import asyncio
import contextvars
from concurrent.futures import ThreadPoolExecutor

from repro.obs.context import (
    TraceContext,
    bind_trace,
    current_trace,
    new_request_id,
    new_trace_id,
    trace_context,
    unbind_trace,
)


class TestIds:
    def test_shapes(self):
        assert len(new_trace_id()) == 32  # 128-bit hex
        assert len(new_request_id()) == 16  # 64-bit hex
        int(new_trace_id(), 16)  # valid hex

    def test_uniqueness(self):
        assert len({new_trace_id() for _ in range(100)}) == 100


class TestTraceContext:
    def test_child_keeps_trace(self):
        parent = TraceContext(trace_id="t1", request_id="r1")
        child = parent.child("r2")
        assert child.trace_id == "t1" and child.request_id == "r2"
        assert parent.request_id == "r1"  # frozen, unchanged

    def test_nothing_bound_by_default(self):
        assert current_trace() is None

    def test_context_manager_binds_and_restores(self):
        with trace_context(trace_id="t", request_id="r") as ctx:
            assert current_trace() is ctx
            assert ctx.trace_id == "t" and ctx.request_id == "r"
        assert current_trace() is None

    def test_fresh_trace_id_minted_when_absent(self):
        with trace_context() as ctx:
            assert len(ctx.trace_id) == 32

    def test_nested_context_joins_parent_trace(self):
        with trace_context(trace_id="outer") as outer:
            with trace_context(request_id="inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.request_id == "inner"
            assert current_trace() is outer

    def test_bind_unbind_token(self):
        ctx = TraceContext(trace_id="t", request_id="r")
        token = bind_trace(ctx)
        assert current_trace() is ctx
        unbind_trace(token)
        assert current_trace() is None


class TestPropagation:
    def test_follows_asyncio_tasks_independently(self):
        async def worker(name):
            with trace_context(request_id=name) as ctx:
                await asyncio.sleep(0.01)
                assert current_trace() is ctx
                return current_trace().request_id

        async def main():
            return await asyncio.gather(worker("a"), worker("b"))

        assert asyncio.run(main()) == ["a", "b"]

    def test_copy_context_carries_onto_pool_threads(self):
        """run_in_executor does not propagate contextvars by itself; the
        serve layer's copy_context().run idiom must."""
        ctx = TraceContext(trace_id="t", request_id="r")
        token = bind_trace(ctx)
        try:
            snapshot = contextvars.copy_context()
        finally:
            unbind_trace(token)
        with ThreadPoolExecutor(max_workers=1) as pool:
            bare = pool.submit(current_trace).result()
            carried = pool.submit(lambda: snapshot.run(current_trace)).result()
        assert bare is None
        assert carried is ctx
