"""Tests for the variant-calling stage of the DNA pipeline."""

import pytest

from repro.apps.dna import (
    PileupCaller,
    ReadMapper,
    ShortRead,
    SortedKmerIndex,
    Variant,
    generate_reads,
    plant_variants,
    random_genome,
    score_calls,
)
from repro.errors import WorkloadError


class TestPlantVariants:
    def test_count_and_difference(self):
        genome = random_genome(2000, seed=0)
        donor, truth = plant_variants(genome, 15, seed=1)
        assert len(truth) == 15
        for position, base in truth.items():
            assert donor[position] == base
            assert genome[position] != base

    def test_untouched_elsewhere(self):
        genome = random_genome(500, seed=0)
        donor, truth = plant_variants(genome, 5, seed=1)
        for i in range(500):
            if i not in truth:
                assert donor[i] == genome[i]

    def test_seeded(self):
        genome = random_genome(500, seed=0)
        assert plant_variants(genome, 5, seed=9) == plant_variants(genome, 5, seed=9)

    def test_zero_count(self):
        genome = random_genome(100, seed=0)
        donor, truth = plant_variants(genome, 0)
        assert donor == genome and truth == {}

    def test_count_bounds(self):
        with pytest.raises(WorkloadError):
            plant_variants("ACGT", 10)


class TestPileupCaller:
    def test_homozygous_variant_called(self):
        reference = "A" * 20
        caller = PileupCaller(reference, min_depth=3)
        for _ in range(5):
            caller.add_read(8, "AACAA")       # C at position 10
        variants = caller.call()
        assert len(variants) == 1
        variant = variants[0]
        assert (variant.position, variant.observed) == (10, "C")
        assert variant.depth == 5 and variant.support == 5
        assert variant.allele_fraction == 1.0

    def test_reference_positions_not_called(self):
        caller = PileupCaller("ACGTACGT")
        for _ in range(5):
            caller.add_read(0, "ACGTACGT")
        assert caller.call() == []

    def test_min_depth_filter(self):
        caller = PileupCaller("A" * 10, min_depth=4)
        for _ in range(3):
            caller.add_read(0, "C")
        assert caller.call() == []

    def test_min_fraction_filters_errors(self):
        caller = PileupCaller("A" * 10, min_depth=3, min_fraction=0.6)
        caller.add_read(0, "C")               # one erroneous read
        for _ in range(4):
            caller.add_read(0, "A")
        assert caller.call() == []

    def test_coverage(self):
        caller = PileupCaller("A" * 10)
        caller.add_read(2, "AAA")
        caller.add_read(3, "AA")
        assert caller.coverage(3) == 2
        assert caller.coverage(2) == 1
        assert caller.coverage(9) == 0

    def test_read_bounds_checked(self):
        caller = PileupCaller("ACGT")
        with pytest.raises(WorkloadError):
            caller.add_read(2, "ACG")
        with pytest.raises(WorkloadError):
            caller.add_read(-1, "A")

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            PileupCaller("ACGT", min_depth=0)
        with pytest.raises(WorkloadError):
            PileupCaller("ACGT", min_fraction=0.0)


class TestScoring:
    def test_perfect_calls(self):
        truth = {5: "C", 9: "G"}
        calls = [Variant(5, "A", "C", 10, 10), Variant(9, "A", "G", 8, 8)]
        score = score_calls(calls, truth)
        assert score.recall == 1.0 and score.precision == 1.0

    def test_false_positive_counted(self):
        score = score_calls([Variant(3, "A", "T", 5, 5)], {})
        assert score.precision == 0.0
        assert score.false_positives == 1

    def test_false_negative_counted(self):
        score = score_calls([], {3: "T"})
        assert score.recall == 0.0
        assert score.false_negatives == 1

    def test_wrong_allele_is_both_fp_and_fn(self):
        score = score_calls([Variant(3, "A", "C", 5, 5)], {3: "T"})
        assert score.false_positives == 1
        assert score.false_negatives == 1


class TestEndToEndCalling:
    def test_clinical_pipeline(self):
        """Plant variants -> sequence donor -> map to reference ->
        pileup -> call -> score.  The paper's [51] workflow, measured."""
        reference = random_genome(15000, seed=31)
        donor, truth = plant_variants(reference, 12, seed=32)
        reads = generate_reads(donor, coverage=12, read_length=80,
                               error_rate=0.002, seed=33)
        index = SortedKmerIndex(reference, k=16)
        mapper = ReadMapper(index, max_mismatches=4)
        stats = mapper.map_all(reads)
        caller = PileupCaller(reference)
        caller.add_mapped(stats, reads)
        score = score_calls(caller.call(), truth)
        assert score.recall > 0.7
        assert score.precision > 0.9

    def test_add_mapped_length_check(self):
        reference = random_genome(1000, seed=0)
        index = SortedKmerIndex(reference, k=16)
        mapper = ReadMapper(index)
        stats = mapper.map_all(generate_reads(reference, coverage=0.5,
                                              read_length=50, seed=1))
        caller = PileupCaller(reference)
        with pytest.raises(WorkloadError):
            caller.add_mapped(stats, [])
