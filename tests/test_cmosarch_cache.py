"""Tests for the analytical and functional cache models."""

import pytest

from repro.cmosarch import CacheModel, FunctionalCache
from repro.devices import CACHE_8KB_DNA, CACHE_8KB_MATH
from repro.errors import ArchitectureError


class TestAnalyticalModel:
    def test_average_read_latency_dna(self):
        model = CacheModel(CACHE_8KB_DNA)
        assert model.average_read_latency() == pytest.approx(83e-9)

    def test_average_read_latency_math(self):
        model = CacheModel(CACHE_8KB_MATH)
        assert model.average_read_latency() == pytest.approx(4.28e-9)

    def test_write_latency_one_cycle(self):
        model = CacheModel(CACHE_8KB_DNA)
        assert model.write_latency() == pytest.approx(1e-9)

    def test_access_cost_totals(self):
        model = CacheModel(CACHE_8KB_MATH)
        cost = model.access_cost(reads=2, writes=1)
        assert cost.latency == pytest.approx(2 * 4.28e-9 + 1e-9)
        assert cost.hits == pytest.approx(2 * 0.98)
        assert cost.misses == pytest.approx(2 * 0.02)

    def test_access_cost_validation(self):
        with pytest.raises(ArchitectureError):
            CacheModel(CACHE_8KB_DNA).access_cost(-1, 0)

    def test_static_energy(self):
        model = CacheModel(CACHE_8KB_DNA)
        assert model.static_energy(2.0) == pytest.approx(2.0 / 64.0)
        with pytest.raises(ArchitectureError):
            model.static_energy(-1.0)


class TestFunctionalCache:
    def test_repeat_access_hits(self):
        cache = FunctionalCache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)   # same 64-byte line

    def test_distinct_lines_miss(self):
        cache = FunctionalCache()
        cache.access(0)
        assert not cache.access(64)

    def test_sequential_stream_has_high_hit_ratio(self):
        """Streaming access (good locality) hits ~ 63/64 of the time."""
        cache = FunctionalCache()
        cache.access_many(range(0, 4096))
        assert cache.hit_ratio > 0.9

    def test_random_stream_over_large_footprint_misses(self):
        """The sorted-index access pattern: random probes over a
        footprint far larger than the cache mostly miss."""
        import random

        rng = random.Random(3)
        cache = FunctionalCache()
        addresses = [rng.randrange(0, 64 * 1024 * 1024) for _ in range(4000)]
        cache.access_many(addresses)
        assert cache.hit_ratio < 0.05

    def test_lru_eviction(self):
        # Direct-mapped-like stress: 1 set, 2 ways.
        cache = FunctionalCache(size_bytes=128, line_bytes=64, ways=2)
        cache.access(0)        # line 0
        cache.access(64)       # line 1
        cache.access(0)        # keeps line 0 most recent? no - touch
        cache.access(128)      # evicts line 1 (LRU)
        assert cache.access(0)          # still resident
        assert not cache.access(64)     # was evicted

    def test_access_many_returns_deltas(self):
        cache = FunctionalCache()
        hits, misses = cache.access_many([0, 0, 64])
        assert (hits, misses) == (1, 2)

    def test_geometry_validation(self):
        with pytest.raises(ArchitectureError):
            FunctionalCache(size_bytes=32, line_bytes=64)
        with pytest.raises(ArchitectureError):
            FunctionalCache(size_bytes=8192, line_bytes=64, ways=5)

    def test_negative_address_rejected(self):
        with pytest.raises(ArchitectureError):
            FunctionalCache().access(-1)

    def test_hit_ratio_empty(self):
        assert FunctionalCache().hit_ratio == 0.0
