"""Tests for the IMPLY adders and the CRS TC-adder cost model."""

import itertools

import pytest

from repro.errors import LogicError
from repro.logic import (
    ImplyMachine,
    TCAdderCost,
    add_integers_functional,
    full_adder_program,
    ripple_adder_program,
)
from repro.units import FJ, PS


class TestFullAdder:
    @pytest.mark.parametrize(
        "a,b,cin", list(itertools.product((0, 1), repeat=3))
    )
    def test_exhaustive_truth_table(self, a, b, cin):
        prog = full_adder_program()
        out = prog.run_functional({"a": a, "b": b, "cin": cin})
        total = a + b + cin
        assert out["sum"] == total & 1
        assert out["cout"] == total >> 1

    @pytest.mark.parametrize(
        "a,b,cin", list(itertools.product((0, 1), repeat=3))
    )
    def test_electrical_agreement(self, a, b, cin):
        machine = ImplyMachine()
        machine.run_and_check(full_adder_program(), {"a": a, "b": b, "cin": cin})

    def test_validates(self):
        full_adder_program().validate()


class TestRippleAdder:
    @pytest.mark.parametrize("width,x,y", [
        (1, 0, 0), (1, 1, 1),
        (4, 7, 9), (4, 15, 15), (4, 0, 13),
        (8, 200, 55), (8, 255, 255), (8, 128, 128),
        (12, 4095, 1),
    ])
    def test_functional_addition(self, width, x, y):
        result = add_integers_functional(width, x, y)
        assert result["sum"] + (result["cout"] << width) == x + y

    def test_exhaustive_4bit(self):
        prog = ripple_adder_program(4)
        for x in range(16):
            for y in range(16):
                inputs = {f"a{i}": (x >> i) & 1 for i in range(4)}
                inputs.update({f"b{i}": (y >> i) & 1 for i in range(4)})
                out = prog.run_functional(inputs)
                total = sum(out[f"s{i}"] << i for i in range(4))
                total += out["cout"] << 4
                assert total == x + y, (x, y)

    def test_electrical_2bit_exhaustive(self):
        prog = ripple_adder_program(2)
        for x in range(4):
            for y in range(4):
                machine = ImplyMachine()
                inputs = {f"a{i}": (x >> i) & 1 for i in range(2)}
                inputs.update({f"b{i}": (y >> i) & 1 for i in range(2)})
                machine.run_and_check(prog, inputs)

    def test_steps_scale_linearly(self):
        s4 = ripple_adder_program(4).step_count
        s8 = ripple_adder_program(8).step_count
        s12 = ripple_adder_program(12).step_count
        assert s8 - s4 == s12 - s8  # constant per-bit cost

    def test_rejects_zero_width(self):
        with pytest.raises(LogicError):
            ripple_adder_program(0)

    def test_functional_rejects_oversized_operands(self):
        with pytest.raises(LogicError):
            add_integers_functional(4, 16, 0)


class TestTCAdderCost:
    """Every assertion quotes a Table 1 CIM-mathematics line."""

    def test_memristors_n_plus_2(self):
        assert TCAdderCost(width=32).memristors == 34

    def test_steps_4n_plus_5(self):
        assert TCAdderCost(width=32).steps == 133

    def test_latency_is_steps_times_write_time(self):
        # 133 x 200 ps = 26.6 ns (the paper prints 16600 ps beside the
        # same formula — an arithmetic slip; we reproduce the formula).
        assert TCAdderCost(width=32).latency == pytest.approx(133 * 200 * PS)

    def test_dynamic_energy_formula(self):
        # 8 ops/bit x 32 bits x 1 fJ = 256 fJ (paper prints 246 fJ
        # beside this exact formula).
        assert TCAdderCost(width=32).dynamic_energy == pytest.approx(256 * FJ)

    def test_static_energy_zero(self):
        assert TCAdderCost().static_energy == 0.0

    def test_area_34_cells(self):
        cost = TCAdderCost(width=32)
        assert cost.area == pytest.approx(34 * cost.technology.cell_area)
        # = 3.4e-3 um^2 in Table 1.
        assert cost.area == pytest.approx(3.4e-3 * 1e-12)

    def test_other_widths(self):
        cost = TCAdderCost(width=8)
        assert cost.memristors == 10
        assert cost.steps == 37

    def test_rejects_zero_width(self):
        with pytest.raises(LogicError):
            TCAdderCost(width=0)
