"""Tests for the bit-plane functional executor and its plane transforms."""

import numpy as np
import pytest

from repro.engine import (
    BACKENDS,
    DEFAULT_BACKEND_ENV,
    PLANE_LANE_BITS,
    adder_kernel,
    bitplane_outputs,
    cam_match_kernel,
    comparator_kernel,
    default_backend,
    pack_bitplanes,
    plane_lanes,
    run_kernel,
    unpack_bitplanes,
)
from repro.engine.bitplane import (
    REPLAY_CACHE_CAPACITY,
    clear_replay_cache,
    ints_to_planes,
    planes_to_ints,
    replay_for_kernel,
)
from repro.engine.executors import _functional_outputs, _prepare_input_bits
from repro.errors import EngineError
from repro.obs.registry import get_registry


class TestPlaneTransforms:
    @pytest.mark.parametrize("words", [1, 63, 64, 65, 130])
    def test_pack_unpack_round_trip(self, words):
        rng = np.random.default_rng(words)
        bits = rng.integers(0, 2, size=(5, words), dtype=np.uint8)
        planes = pack_bitplanes(bits)
        assert planes.shape == (5, plane_lanes(words))
        assert planes.dtype == np.uint64
        assert np.array_equal(unpack_bitplanes(planes, words), bits)

    def test_lane_count(self):
        assert plane_lanes(1) == 1
        assert plane_lanes(PLANE_LANE_BITS) == 1
        assert plane_lanes(PLANE_LANE_BITS + 1) == 2
        with pytest.raises(EngineError):
            plane_lanes(0)

    def test_pad_bits_are_zero(self):
        bits = np.ones((2, 3), dtype=np.uint8)
        planes = pack_bitplanes(bits)
        assert planes.tolist() == [[0b111], [0b111]]

    def test_plane_int_round_trip(self):
        rng = np.random.default_rng(0)
        planes = rng.integers(0, 2**63, size=(4, 3), dtype=np.uint64)
        values = planes_to_ints(planes)
        assert np.array_equal(ints_to_planes(values, 3), planes)

    def test_validation(self):
        with pytest.raises(EngineError):
            pack_bitplanes(np.zeros(4, dtype=np.uint8))       # 1-D
        with pytest.raises(EngineError):
            pack_bitplanes(np.full((2, 3), 2, dtype=np.uint8))  # not 0/1
        with pytest.raises(EngineError):
            unpack_bitplanes(np.zeros((2, 1), dtype=np.uint32), 4)
        with pytest.raises(EngineError):
            unpack_bitplanes(np.zeros((2, 1), dtype=np.uint64), 65)


class TestReplayCache:
    def setup_method(self):
        clear_replay_cache()

    def test_replay_memoised_by_digest(self):
        kernel = comparator_kernel()
        first = replay_for_kernel(kernel)
        second = replay_for_kernel(kernel)
        assert first is second

    def test_clear_forces_recompile(self):
        kernel = comparator_kernel()
        first = replay_for_kernel(kernel)
        clear_replay_cache()
        assert replay_for_kernel(kernel) is not first

    def test_capacity_is_bounded(self):
        assert REPLAY_CACHE_CAPACITY >= 1


class TestBitplaneExecution:
    @pytest.mark.parametrize("words", [1, 64, 65, 200])
    def test_bit_identical_to_functional(self, words):
        """The tentpole property at the replay layer, across lane
        boundaries (1 word, exactly one lane, one lane + 1, multi-lane).
        """
        kernel = adder_kernel(16)
        rng = np.random.default_rng(words)
        operands = {
            "a": rng.integers(0, 2**16, size=words).tolist(),
            "b": rng.integers(0, 2**16, size=words).tolist(),
        }
        bits = _prepare_input_bits(kernel, operands)
        planes = bitplane_outputs(kernel, bits)
        reference = _functional_outputs(kernel, bits)
        assert set(planes) == set(reference)
        for signal in reference:
            assert np.array_equal(planes[signal], reference[signal])

    def test_run_kernel_backend(self):
        kernel = adder_kernel(8)
        operands = {"a": [200, 1], "b": [100, 2]}
        result = run_kernel(kernel, operands,
                            backend="functional_bitplane")
        assert result.backend == "functional_bitplane"
        assert result.word("sum").tolist() == [44, 3]   # mod 256
        assert result.bit("cout").tolist() == [1, 0]
        functional = run_kernel(kernel, operands)
        assert result.energy == functional.energy
        assert result.latency == functional.latency

    def test_cam_match_backend_equality(self):
        kernel = cam_match_kernel(8)
        operands = {"a": [7, 9, 255], "b": [7, 8, 255]}
        result = run_kernel(kernel, operands,
                            backend="functional_bitplane")
        assert result.bit("match").tolist() == [1, 0, 1]

    def test_empty_batch_rejected(self):
        kernel = comparator_kernel()
        with pytest.raises(EngineError, match="empty"):
            bitplane_outputs(kernel, np.zeros((4, 0), dtype=np.uint8))

    def test_plane_counter_counts_lanes(self):
        counter = get_registry().counter("engine_bitplanes_executed_total")
        kernel = comparator_kernel()
        before = counter.value
        run_kernel(kernel, {"a": [1] * 65, "b": [1] * 65},
                   backend="functional_bitplane")
        assert counter.value == before + 2    # 65 words -> 2 lanes

    def test_dispatch_counter_labelled(self):
        counter = get_registry().counter("engine_executor_dispatch_total")
        labelled = counter.labels(backend="functional_bitplane")
        before = labelled.value
        run_kernel(comparator_kernel(), {"a": [1], "b": [2]},
                   backend="functional_bitplane")
        assert labelled.value == before + 1


class TestDefaultBackendEnv:
    def test_default_is_functional(self, monkeypatch):
        monkeypatch.delenv(DEFAULT_BACKEND_ENV, raising=False)
        assert default_backend() == "functional"

    def test_env_repoints_default(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_BACKEND_ENV, "functional_bitplane")
        assert default_backend() == "functional_bitplane"
        result = run_kernel(adder_kernel(8), {"a": [3], "b": [4]})
        assert result.backend == "functional_bitplane"
        assert result.word("sum").tolist() == [7]

    def test_env_rejects_unknown_backend(self, monkeypatch):
        monkeypatch.setenv(DEFAULT_BACKEND_ENV, "quantum")
        with pytest.raises(EngineError, match="quantum"):
            default_backend()

    def test_every_backend_env_value_accepted(self, monkeypatch):
        for backend in BACKENDS:
            monkeypatch.setenv(DEFAULT_BACKEND_ENV, backend)
            assert default_backend() == backend
