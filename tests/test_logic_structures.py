"""Tests for the crossbar LUT and memristive CAM."""

import pytest

from repro.errors import LogicError
from repro.logic import WILDCARD, CrossbarLUT, MemristiveCAM


class TestCrossbarLUT:
    def test_from_function_xor(self):
        lut = CrossbarLUT.from_function(lambda a, b: a ^ b, input_bits=2)
        for a in (0, 1):
            for b in (0, 1):
                assert lut.lookup(a, b) == a ^ b

    def test_multi_bit_output(self):
        # A 2-bit adder as a LUT: inputs a, b -> 2-bit sum.
        lut = CrossbarLUT.from_function(lambda a, b: a + b, 2, output_bits=2)
        assert lut.lookup(1, 1) == 2

    def test_lookup_word(self):
        lut = CrossbarLUT.from_function(lambda a, b, c: a & b & c, 3)
        assert lut.lookup_word(0b111) == 1
        assert lut.lookup_word(0b011) == 0

    def test_three_input_majority(self):
        maj = lambda a, b, c: 1 if a + b + c >= 2 else 0
        lut = CrossbarLUT.from_function(maj, 3)
        for pattern in range(8):
            bits = [(pattern >> i) & 1 for i in range(3)]
            assert lut.lookup(*bits) == maj(*bits)

    def test_crs_backed_lut(self):
        lut = CrossbarLUT.from_function(lambda a, b: a | b, 2, cell_kind="CRS")
        assert lut.lookup(0, 0) == 0
        assert lut.lookup(1, 0) == 1
        # Repeated lookups survive destructive reads (write-back).
        assert lut.lookup(0, 0) == 0

    def test_access_stats_accumulate(self):
        lut = CrossbarLUT.from_function(lambda a: a, 1)
        before = lut.stats.reads
        lut.lookup(1)
        assert lut.stats.reads == before + 1

    def test_area_positive(self):
        assert CrossbarLUT(2, 1).area() > 0

    def test_wrong_address_arity(self):
        lut = CrossbarLUT.from_function(lambda a, b: a, 2)
        with pytest.raises(LogicError):
            lut.lookup(1)

    def test_non_bit_address(self):
        lut = CrossbarLUT.from_function(lambda a: a, 1)
        with pytest.raises(LogicError):
            lut.lookup(2)

    def test_function_value_overflow_rejected(self):
        with pytest.raises(LogicError):
            CrossbarLUT.from_function(lambda a, b: a + b, 2, output_bits=1)

    def test_geometry_validation(self):
        with pytest.raises(LogicError):
            CrossbarLUT(0, 1)
        with pytest.raises(LogicError):
            CrossbarLUT(21, 1)
        with pytest.raises(LogicError):
            CrossbarLUT(2, 0)


class TestMemristiveCAM:
    def make_cam(self):
        cam = MemristiveCAM(rows=4, width=4)
        cam.store(0, [1, 0, 1, 0])
        cam.store(1, [1, 1, 1, 1])
        cam.store(2, [1, 0, 1, 0])
        return cam

    def test_exact_match(self):
        cam = self.make_cam()
        assert cam.search([1, 0, 1, 0]) == [0, 2]

    def test_no_match(self):
        cam = self.make_cam()
        assert cam.search([0, 0, 0, 0]) == []

    def test_search_first(self):
        cam = self.make_cam()
        assert cam.search_first([1, 0, 1, 0]) == 0
        assert cam.search_first([0, 1, 0, 1]) is None

    def test_wildcard_matching(self):
        cam = MemristiveCAM(2, 3)
        cam.store(0, [1, WILDCARD, 0])
        assert cam.search([1, 0, 0]) == [0]
        assert cam.search([1, 1, 0]) == [0]
        assert cam.search([0, 1, 0]) == []

    def test_unprogrammed_rows_never_match(self):
        cam = MemristiveCAM(4, 2)
        cam.store(3, [0, 0])
        assert cam.search([0, 0]) == [3]
        assert cam.stored_rows() == 1

    def test_search_cost_scales_with_stored_cells(self):
        cam = self.make_cam()
        cam.search([1, 1, 1, 1])
        assert cam.stats.searches == 1
        assert cam.stats.cell_evaluations == 3 * 4
        assert cam.stats.energy > 0

    def test_search_latency_single_access(self):
        """Associative search is one array access regardless of rows."""
        cam = self.make_cam()
        cam.search([1, 1, 1, 1])
        t1 = cam.stats.time
        cam.search([0, 0, 0, 0])
        assert cam.stats.time == pytest.approx(2 * t1)

    def test_area_two_devices_per_cell(self):
        cam = MemristiveCAM(4, 4)
        assert cam.area() == pytest.approx(
            4 * 4 * 2 * cam.technology.cell_area
        )

    def test_validation(self):
        cam = MemristiveCAM(2, 2)
        with pytest.raises(LogicError):
            cam.store(5, [0, 0])
        with pytest.raises(LogicError):
            cam.store(0, [0])
        with pytest.raises(LogicError):
            cam.store(0, [0, 7])
        with pytest.raises(LogicError):
            cam.search([0])
        with pytest.raises(LogicError):
            cam.search([WILDCARD, 0])
        with pytest.raises(LogicError):
            MemristiveCAM(0, 2)
