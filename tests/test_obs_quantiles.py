"""P² streaming quantile estimation (ISSUE 6 tentpole, part 3)."""

import random

import pytest

from repro.errors import ObservabilityError
from repro.obs.quantiles import DEFAULT_QUANTILES, P2Quantile, QuantileDigest


class TestP2Quantile:
    def test_target_validation(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ObservabilityError):
                P2Quantile(bad)

    def test_empty_has_no_value(self):
        assert P2Quantile(0.5).value is None

    def test_small_buffer_is_exact_order_statistic(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            q.observe(v)
        assert q.value == pytest.approx(3.0)  # exact median of {1,3,5}
        assert q.count == 3

    def test_single_observation(self):
        q = P2Quantile(0.99)
        q.observe(7.0)
        assert q.value == pytest.approx(7.0)

    @pytest.mark.parametrize("target", [0.5, 0.9, 0.95, 0.99])
    def test_accuracy_on_uniform(self, target):
        rng = random.Random(7)
        q = P2Quantile(target)
        values = [rng.random() for _ in range(20_000)]
        for v in values:
            q.observe(v)
        values.sort()
        exact = values[int(target * len(values))]
        assert q.value == pytest.approx(exact, abs=0.02)

    def test_accuracy_on_gaussian(self):
        rng = random.Random(11)
        q = P2Quantile(0.95)
        values = [rng.gauss(100.0, 15.0) for _ in range(20_000)]
        for v in values:
            q.observe(v)
        values.sort()
        exact = values[int(0.95 * len(values))]
        assert q.value == pytest.approx(exact, rel=0.02)

    def test_estimate_stays_inside_observed_range(self):
        rng = random.Random(3)
        q = P2Quantile(0.99)
        lo, hi = float("inf"), float("-inf")
        for _ in range(5_000):
            v = rng.expovariate(1.0)
            lo, hi = min(lo, v), max(hi, v)
            q.observe(v)
        assert lo <= q.value <= hi

    def test_reset_forgets_observations(self):
        q = P2Quantile(0.5)
        for v in range(100):
            q.observe(float(v))
        q.reset()
        assert q.count == 0 and q.value is None
        q.observe(1.0)
        assert q.value == pytest.approx(1.0)


class TestQuantileDigest:
    def test_default_targets(self):
        assert QuantileDigest().targets == DEFAULT_QUANTILES

    def test_target_validation(self):
        with pytest.raises(ObservabilityError):
            QuantileDigest(())
        with pytest.raises(ObservabilityError):
            QuantileDigest((0.9, 0.5))  # not increasing
        with pytest.raises(ObservabilityError):
            QuantileDigest((0.5, 0.5))  # not strictly

    def test_untracked_target_raises(self):
        digest = QuantileDigest((0.5,))
        with pytest.raises(ObservabilityError):
            digest.quantile(0.99)

    def test_bookkeeping(self):
        digest = QuantileDigest((0.5,))
        assert digest.count == 0 and digest.sum == 0.0
        assert digest.minimum is None and digest.maximum is None
        for v in (4.0, 1.0, 7.0):
            digest.observe(v)
        assert digest.count == 3
        assert digest.sum == pytest.approx(12.0)
        assert digest.mean == pytest.approx(4.0)
        assert digest.minimum == pytest.approx(1.0)
        assert digest.maximum == pytest.approx(7.0)

    def test_quantiles_mapping(self):
        digest = QuantileDigest()
        rng = random.Random(5)
        for _ in range(1_000):
            digest.observe(rng.random())
        estimates = digest.quantiles()
        assert set(estimates) == set(DEFAULT_QUANTILES)
        assert estimates[0.5] < estimates[0.95] < estimates[0.99]

    def test_empty_quantiles_are_none(self):
        assert QuantileDigest().quantiles() == {q: None for q in DEFAULT_QUANTILES}

    def test_reset(self):
        digest = QuantileDigest()
        digest.observe(5.0)
        digest.reset()
        assert digest.count == 0
        assert digest.sum == 0.0
        assert digest.minimum is None
