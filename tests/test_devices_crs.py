"""Tests for the complementary resistive switch (Fig 4)."""

import pytest

from repro.devices import (
    ComplementaryResistiveSwitch,
    CRSState,
    IdealBipolarMemristor,
    SwitchingThresholds,
    triangular_sweep,
)
from repro.errors import DeviceError


class TestStateMapping:
    def test_initial_state(self, crs):
        assert crs.state is CRSState.ZERO
        assert crs.stored_bit() == 0

    def test_set_state_round_trip(self, crs):
        for state in CRSState:
            crs.set_state(state)
            assert crs.state is state

    def test_stored_bit_none_for_on_off(self, crs):
        crs.set_state(CRSState.ON)
        assert crs.stored_bit() is None
        crs.set_state(CRSState.OFF)
        assert crs.stored_bit() is None


class TestThresholds:
    def test_four_thresholds_ordered(self, crs):
        vth1, vth2, vth3, vth4 = crs.thresholds()
        assert 0 < vth1 < vth2
        assert vth4 < vth3 < 0

    def test_read_window_nonempty(self, crs):
        lo, hi = crs.read_window()
        assert lo < hi

    def test_empty_window_rejected(self):
        # v_set >= 2|v_reset| collapses the read window.
        element = lambda: IdealBipolarMemristor(
            thresholds=SwitchingThresholds(v_set=1.0, v_reset=-0.4)
        )
        with pytest.raises(DeviceError):
            ComplementaryResistiveSwitch(element(), element())


class TestHighResistanceProperty:
    def test_both_states_high_resistive(self, crs):
        """The anti-sneak-path property: '0' and '1' look identical at
        low bias (one element is always in HRS)."""
        crs.set_state(CRSState.ZERO)
        r0 = crs.resistance()
        crs.set_state(CRSState.ONE)
        r1 = crs.resistance()
        assert r0 == pytest.approx(r1)
        assert r0 > crs.element_a.r_off / 2

    def test_on_state_low_resistive(self, crs):
        crs.set_state(CRSState.ON)
        assert crs.resistance() == pytest.approx(
            crs.element_a.r_on + crs.element_b.r_on
        )

    def test_subthreshold_bias_preserves_state(self, crs):
        for state in (CRSState.ZERO, CRSState.ONE):
            crs.set_state(state)
            crs.apply_voltage(0.3, 1e-6)
            assert crs.state is state


class TestWriteProtocol:
    def test_write_one_positive(self, crs):
        crs.write(1)
        assert crs.state is CRSState.ONE

    def test_write_zero_negative(self, crs):
        crs.write(1)
        crs.write(0)
        assert crs.state is CRSState.ZERO

    def test_writes_are_idempotent(self, crs):
        crs.write(1)
        crs.write(1)
        assert crs.state is CRSState.ONE
        crs.write(0)
        crs.write(0)
        assert crs.state is CRSState.ZERO

    def test_write_from_on_state(self, crs):
        crs.set_state(CRSState.ON)
        crs.write(0)
        assert crs.state is CRSState.ZERO

    def test_write_from_off_state(self, crs):
        crs.set_state(CRSState.OFF)
        crs.write(1)
        assert crs.state is CRSState.ONE

    def test_write_one_requires_voltage_above_vth2(self, crs):
        vth2 = crs.thresholds()[1]
        with pytest.raises(DeviceError):
            crs.write(1, v_write=vth2 * 0.9)

    def test_write_zero_requires_voltage_below_vth4(self, crs):
        vth4 = crs.thresholds()[3]
        with pytest.raises(DeviceError):
            crs.write(0, v_write=vth4 * 0.9)

    def test_write_rejects_non_bit(self, crs):
        with pytest.raises(DeviceError):
            crs.write(2)


class TestReadProtocol:
    def test_read_one_nondestructive(self, crs):
        crs.write(1)
        assert crs.read() == 1
        assert crs.state is CRSState.ONE

    def test_read_zero_with_write_back(self, crs):
        crs.write(0)
        assert crs.read() == 0
        # The paper: write back the previous state after reading.
        assert crs.state is CRSState.ZERO

    def test_read_zero_without_write_back_leaves_on(self, crs):
        crs.write(0)
        assert crs.read(write_back=False) == 0
        assert crs.state is CRSState.ON

    def test_read_voltage_outside_window_rejected(self, crs):
        lo, hi = crs.read_window()
        with pytest.raises(DeviceError):
            crs.read(v_read=hi * 1.5)
        with pytest.raises(DeviceError):
            crs.read(v_read=lo * 0.5)

    def test_read_on_state_rejected(self, crs):
        crs.set_state(CRSState.ON)
        with pytest.raises(DeviceError):
            crs.read()

    def test_many_read_cycles_stable(self, crs):
        crs.write(0)
        for _ in range(10):
            assert crs.read() == 0
        crs.write(1)
        for _ in range(10):
            assert crs.read() == 1


class TestIVSweep:
    def test_butterfly_visits_all_storage_states(self, crs):
        trace = crs.sweep_iv(triangular_sweep(1.6, 32))
        states = {state for _, _, state in trace}
        assert CRSState.ZERO in states
        assert CRSState.ONE in states
        assert CRSState.ON in states

    def test_current_spike_in_read_window(self, crs):
        """Sweeping up from '0' shows the ON-state current spike between
        Vth1 and Vth2, then the drop after Vth2 — Fig 4's signature."""
        vth1, vth2, _, _ = crs.thresholds()
        crs.set_state(CRSState.ZERO)
        trace = crs.sweep_iv(triangular_sweep(1.6, 64))
        in_window = [i for v, i, s in trace if vth1 * 1.05 < v < vth2 * 0.95]
        above = [abs(i) for v, i, s in trace if v > vth2 * 1.1]
        assert max(in_window) > 10 * max(above)

    def test_sweep_ends_in_written_state(self, crs):
        # Full positive-then-negative sweep ends having written '0'.
        crs.sweep_iv(triangular_sweep(1.6, 32))
        assert crs.state is CRSState.ZERO

    def test_triangular_sweep_shape(self):
        wave = triangular_sweep(1.0, 4)
        assert wave[0] == 0.0
        assert max(wave) == pytest.approx(1.0)
        assert min(wave) == pytest.approx(-1.0)
        assert wave[-1] == pytest.approx(0.0)

    def test_triangular_sweep_validation(self):
        with pytest.raises(DeviceError):
            triangular_sweep(-1.0)
        with pytest.raises(DeviceError):
            triangular_sweep(1.0, points_per_leg=1)


class TestDestructiveReadDetection:
    def test_transitions_reported(self, crs):
        crs.set_state(CRSState.ZERO)
        transitions = crs.apply_voltage(0.95, 1e-9)
        assert transitions >= 1
        assert crs.state is CRSState.ON

    def test_no_transition_below_threshold(self, crs):
        assert crs.apply_voltage(0.3, 1e-9) == 0
