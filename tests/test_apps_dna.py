"""Tests for the DNA application pipeline."""

import pytest

from repro.apps.dna import (
    ALPHABET,
    ReadMapper,
    ShortRead,
    SortedKmerIndex,
    decode_nucleotide,
    decode_sequence,
    encode_nucleotide,
    encode_sequence,
    generate_reads,
    measure_cache_hit_ratio,
    measured_workload,
    random_genome,
)
from repro.errors import WorkloadError


class TestEncoding:
    def test_round_trip(self):
        for nucleotide in ALPHABET:
            assert decode_nucleotide(encode_nucleotide(nucleotide)) == nucleotide

    def test_two_bits(self):
        assert {encode_nucleotide(n) for n in ALPHABET} == {0, 1, 2, 3}

    def test_sequence_round_trip(self):
        seq = "ACGTACGT"
        assert decode_sequence(encode_sequence(seq)) == seq

    def test_invalid_nucleotide(self):
        with pytest.raises(WorkloadError):
            encode_nucleotide("N")
        with pytest.raises(WorkloadError):
            decode_nucleotide(4)


class TestGenome:
    def test_length_and_alphabet(self):
        genome = random_genome(1000, seed=0)
        assert len(genome) == 1000
        assert set(genome) <= set(ALPHABET)

    def test_seeded_reproducibility(self):
        assert random_genome(100, seed=5) == random_genome(100, seed=5)
        assert random_genome(100, seed=5) != random_genome(100, seed=6)

    def test_rejects_zero_length(self):
        with pytest.raises(WorkloadError):
            random_genome(0)


class TestReads:
    def test_coverage_formula(self):
        genome = random_genome(10000, seed=0)
        reads = generate_reads(genome, coverage=5, read_length=100, seed=1)
        assert len(reads) == 5 * 10000 // 100

    def test_error_free_reads_match_reference(self):
        genome = random_genome(5000, seed=0)
        for read in generate_reads(genome, coverage=1, read_length=80, seed=1):
            assert genome[read.origin: read.origin + 80] == read.bases

    def test_errors_injected(self):
        genome = random_genome(5000, seed=0)
        reads = generate_reads(genome, coverage=2, read_length=100,
                               error_rate=0.1, seed=1)
        mismatches = sum(
            sum(a != b for a, b in
                zip(genome[r.origin: r.origin + 100], r.bases))
            for r in reads
        )
        # ~10% of 100 chars x 100 reads = ~1000 mismatches.
        assert 600 < mismatches < 1500

    def test_validation(self):
        genome = random_genome(100, seed=0)
        with pytest.raises(WorkloadError):
            generate_reads(genome, read_length=200)
        with pytest.raises(WorkloadError):
            generate_reads(genome, coverage=0, read_length=10)
        with pytest.raises(WorkloadError):
            generate_reads(genome, read_length=10, error_rate=1.0)


class TestSortedIndex:
    def test_lookup_finds_all_occurrences(self):
        genome = "ACGT" * 100
        index = SortedKmerIndex(genome, k=8)
        positions = index.lookup("ACGTACGT")
        assert positions == list(range(0, 4 * 100 - 7, 4))

    def test_missing_kmer_empty(self):
        index = SortedKmerIndex("AAAAAAAAAA", k=4)
        assert index.lookup("ACGT") == []

    def test_every_kmer_indexed(self):
        genome = random_genome(500, seed=3)
        index = SortedKmerIndex(genome, k=12)
        assert len(index) == 500 - 12 + 1
        for start in (0, 100, 488):
            assert start in index.lookup(genome[start: start + 12])

    def test_instrumentation_counts(self):
        genome = random_genome(1000, seed=0)
        index = SortedKmerIndex(genome, k=10)
        index.lookup(genome[:10])
        assert index.stats.probes == 1
        assert index.stats.comparisons > 0
        assert len(index.stats.addresses) == index.stats.comparisons

    def test_reset_stats(self):
        genome = random_genome(200, seed=0)
        index = SortedKmerIndex(genome, k=8)
        index.lookup(genome[:8])
        index.reset_stats()
        assert index.stats.probes == 0

    def test_binary_search_is_logarithmic(self):
        genome = random_genome(4096, seed=0)
        index = SortedKmerIndex(genome, k=12)
        index.lookup(genome[:12])
        # log2(4085) ~ 12; allow the equal-run scan some slack.
        assert index.stats.comparisons < 40

    def test_pack_validation(self):
        index = SortedKmerIndex("ACGTACGTACGT", k=4)
        with pytest.raises(WorkloadError):
            index.pack("ACG")

    def test_k_bounds(self):
        with pytest.raises(WorkloadError):
            SortedKmerIndex("ACGT", k=0)
        with pytest.raises(WorkloadError):
            SortedKmerIndex("ACGT", k=32)
        with pytest.raises(WorkloadError):
            SortedKmerIndex("ACG", k=4)


class TestReadMapper:
    @pytest.fixture(scope="class")
    def pipeline(self):
        genome = random_genome(20000, seed=1)
        reads = generate_reads(genome, coverage=1, read_length=60,
                               error_rate=0.01, seed=2)
        index = SortedKmerIndex(genome, k=16)
        mapper = ReadMapper(index)
        stats = mapper.map_all(reads)
        return genome, index, mapper, stats

    def test_high_accuracy_on_clean_data(self, pipeline):
        _, _, _, stats = pipeline
        assert stats.accuracy > 0.8

    def test_char_comparisons_counted(self, pipeline):
        _, _, _, stats = pipeline
        assert stats.char_comparisons >= stats.candidates_verified

    def test_perfect_reads_map_exactly(self):
        genome = random_genome(5000, seed=4)
        reads = generate_reads(genome, coverage=1, read_length=50, seed=5)
        index = SortedKmerIndex(genome, k=16)
        mapper = ReadMapper(index)
        stats = mapper.map_all(reads)
        assert stats.accuracy == 1.0
        for result in stats.results:
            assert result.mismatches == 0

    def test_read_shorter_than_k_rejected(self):
        index = SortedKmerIndex(random_genome(100, seed=0), k=16)
        with pytest.raises(WorkloadError):
            ReadMapper(index).map_read(ShortRead(0, "ACGT"))

    def test_cim_verify_preserves_results_and_stats(self):
        """The engine-backed comparator verification replays every
        scanned character on the CIM comparator kernel without changing
        the pipeline's measurements or mapping decisions."""
        genome = random_genome(4000, seed=9)
        reads = generate_reads(genome, coverage=1, read_length=40,
                               error_rate=0.03, seed=10)
        plain = ReadMapper(SortedKmerIndex(genome, k=12))
        checked = ReadMapper(SortedKmerIndex(genome, k=12), cim_verify=True)
        s1 = plain.map_all(reads)
        s2 = checked.map_all(reads)
        assert s2.accuracy == s1.accuracy
        assert s2.char_comparisons == s1.char_comparisons
        assert ([r.mapped_position for r in s2.results]
                == [r.mapped_position for r in s1.results])

    def test_measured_hit_ratio_near_paper_assumption(self, pipeline):
        """The Table 1 assumption 'Hit ratio = 50%' — our functional
        cache replay of the real index probes lands in the same band."""
        _, index, _, _ = pipeline
        hit_ratio = measure_cache_hit_ratio(index)
        assert 0.3 < hit_ratio < 0.75

    def test_measured_workload_bridge(self, pipeline):
        _, index, _, stats = pipeline
        workload = measured_workload(stats, 0.5)
        assert workload.operations == stats.candidates_verified
        assert workload.reads_per_op == pytest.approx(
            stats.char_comparisons / stats.candidates_verified
        )

    def test_measured_workload_requires_data(self):
        from repro.apps.dna.mapping import MappingStats

        with pytest.raises(WorkloadError):
            measured_workload(MappingStats(), 0.5)

    def test_hit_ratio_requires_recorded_accesses(self):
        index = SortedKmerIndex(random_genome(100, seed=0), k=8)
        with pytest.raises(WorkloadError):
            measure_cache_hit_ratio(index)
