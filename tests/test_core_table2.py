"""The Table 2 reproduction tests — the headline result of the paper.

These tests pin the quantitative agreement documented in
EXPERIMENTS.md: the mathematics column reconstructs to ~0.1%, the DNA
execution time reconstructs to ~1%, and the qualitative claims (orders
of magnitude CIM improvement) hold everywhere.
"""

import pytest

from repro.core import PAPER_TABLE2, table2


@pytest.fixture(scope="module")
def result():
    return table2(dna_packing="paper")


class TestMathColumnExact:
    """The recoverable cells, matched to the paper's four significant
    figures."""

    def test_conventional_edp(self, result):
        ours = result.metric("math", "conventional", "energy_delay_per_op")
        paper = PAPER_TABLE2[("math", "conventional")]["energy_delay_per_op"]
        assert ours == pytest.approx(paper, rel=0.002)

    def test_conventional_efficiency(self, result):
        ours = result.metric("math", "conventional", "computing_efficiency")
        paper = PAPER_TABLE2[("math", "conventional")]["computing_efficiency"]
        assert ours == pytest.approx(paper, rel=0.002)

    def test_cim_edp(self, result):
        ours = result.metric("math", "cim", "energy_delay_per_op")
        paper = PAPER_TABLE2[("math", "cim")]["energy_delay_per_op"]
        assert ours == pytest.approx(paper, rel=0.0005)

    def test_cim_efficiency(self, result):
        ours = result.metric("math", "cim", "computing_efficiency")
        paper = PAPER_TABLE2[("math", "cim")]["computing_efficiency"]
        assert ours == pytest.approx(paper, rel=0.0005)


class TestMathImprovementRatios:
    """Paper ratios: EDP 162.5x, efficiency 599x."""

    def test_edp_ratio(self, result):
        assert result.improvements["math"].energy_delay == pytest.approx(
            162.5, rel=0.01
        )

    def test_efficiency_ratio(self, result):
        assert result.improvements["math"].computing_efficiency == pytest.approx(
            599.0, rel=0.01
        )


class TestDNAColumn:
    """The DNA energies in the paper contain a unit double-count (see
    DESIGN.md); the time reconstructs and the qualitative claims hold."""

    def test_execution_times_match_paper_implied(self, result):
        conv = result.reports[("dna", "conventional")]
        cim = result.reports[("dna", "cim")]
        assert conv.time == pytest.approx(0.0830, rel=0.01)
        assert cim.time == pytest.approx(0.0830, rel=0.01)

    def test_cim_wins_every_metric(self, result):
        assert result.improvements["dna"].all_improvements()

    def test_efficiency_improvement_orders_of_magnitude(self, result):
        assert result.improvements["dna"].computing_efficiency > 1e3

    def test_comparator_energy_ratio_is_the_paper_900x(self, result):
        """The paper's 901x CE ratio equals (per-op conventional energy)
        / (45 fJ); our per-op energies reproduce the same physics even
        though the paper's absolute joules are buggy."""
        conv = result.reports[("dna", "conventional")]
        cim = result.reports[("dna", "cim")]
        ratio = conv.energy_per_op / cim.energy_per_op
        assert ratio > 500


class TestQualitativeClaims:
    def test_cim_wins_everywhere(self, result):
        for factors in result.improvements.values():
            assert factors.all_improvements()

    def test_paper_values_carried(self, result):
        assert result.paper_metric("math", "cim", "computing_efficiency") == 3.9063e12

    def test_max_packing_variant_also_wins(self):
        packed = table2(dna_packing="max")
        assert packed.improvements["dna"].all_improvements()
        # More units -> strictly faster DNA execution.
        assert (
            packed.reports[("dna", "cim")].time
            < table2(dna_packing="paper").reports[("dna", "cim")].time
        )

    def test_zero_leakage_claim(self, result):
        """'An architecture with practically zero leakage': the CIM
        energy breakdown has no static component."""
        for app in ("dna", "math"):
            breakdown = result.reports[(app, "cim")].energy_breakdown
            assert breakdown["crossbar_static"] == 0.0

    def test_conventional_dominated_by_memory_system(self, result):
        """Fig 2's motivation: conventional energy is cache-dominated."""
        for app in ("dna", "math"):
            report = result.reports[(app, "conventional")]
            assert report.dominant_energy_component() == "cache_static"
