"""Tests for the word-level crossbar memory."""

import pytest

from repro.crossbar import AccessStats, CrossbarMemory
from repro.devices import MEMRISTOR_5NM
from repro.errors import CrossbarError


class TestGeometry:
    def test_dimensions(self):
        memory = CrossbarMemory(16, 8)
        assert memory.words == 16
        assert memory.width == 8

    def test_rejects_unknown_cell_kind(self):
        with pytest.raises(CrossbarError):
            CrossbarMemory(4, 4, cell_kind="2T2R")

    def test_area_scales_with_cells(self):
        small = CrossbarMemory(4, 4).area()
        big = CrossbarMemory(8, 8).area()
        assert big == pytest.approx(4 * small)

    def test_crs_area_doubles(self):
        r1 = CrossbarMemory(4, 4, "1R").area()
        crs = CrossbarMemory(4, 4, "CRS").area()
        assert crs == pytest.approx(2 * r1)


class Test1RAccess:
    def test_word_round_trip(self):
        memory = CrossbarMemory(4, 8)
        memory.write_word(2, [1, 0, 1, 1, 0, 0, 1, 0])
        assert memory.read_word(2) == [1, 0, 1, 1, 0, 0, 1, 0]

    def test_int_round_trip(self):
        memory = CrossbarMemory(4, 8)
        for value in (0, 1, 170, 255):
            memory.write_int(0, value)
            assert memory.read_int(0) == value

    def test_rejects_oversized_int(self):
        memory = CrossbarMemory(4, 4)
        with pytest.raises(CrossbarError):
            memory.write_int(0, 16)
        with pytest.raises(CrossbarError):
            memory.write_int(0, -1)

    def test_rejects_bad_address(self):
        memory = CrossbarMemory(4, 4)
        with pytest.raises(CrossbarError):
            memory.write_int(4, 1)
        with pytest.raises(CrossbarError):
            memory.read_word(-1)

    def test_rejects_wrong_word_width(self):
        memory = CrossbarMemory(4, 4)
        with pytest.raises(CrossbarError):
            memory.write_word(0, [1, 0])


class TestCRSAccess:
    def test_word_round_trip(self):
        memory = CrossbarMemory(4, 8, "CRS")
        memory.write_int(1, 0b10110010)
        assert memory.read_int(1) == 0b10110010

    def test_repeated_reads_stable(self):
        """Destructive reads must be healed by write-back every time."""
        memory = CrossbarMemory(2, 8, "CRS")
        memory.write_int(0, 0b01010101)
        for _ in range(5):
            assert memory.read_int(0) == 0b01010101

    def test_write_backs_counted_per_zero_bit(self):
        memory = CrossbarMemory(2, 8, "CRS")
        memory.write_int(0, 0b00001111)   # four zeros
        memory.read_word(0)
        assert memory.stats.write_backs == 4

    def test_all_ones_word_needs_no_write_back(self):
        memory = CrossbarMemory(2, 4, "CRS")
        memory.write_int(0, 0b1111)
        memory.read_word(0)
        assert memory.stats.write_backs == 0


class TestAccounting:
    def test_write_energy_per_table1(self):
        memory = CrossbarMemory(2, 32)
        memory.write_int(0, 12345)
        assert memory.stats.energy == pytest.approx(32 * MEMRISTOR_5NM.write_energy)
        assert memory.stats.time == pytest.approx(MEMRISTOR_5NM.write_time)

    def test_1r_read_costs_no_write_energy(self):
        memory = CrossbarMemory(2, 8)
        memory.write_int(0, 7)
        e_after_write = memory.stats.energy
        memory.read_word(0)
        assert memory.stats.energy == pytest.approx(e_after_write)
        assert memory.stats.reads == 1

    def test_crs_read_costs_write_back_energy(self):
        memory = CrossbarMemory(2, 8, "CRS")
        memory.write_int(0, 0)           # 8 zeros -> 8 write-backs
        e_after_write = memory.stats.energy
        memory.read_word(0)
        extra = memory.stats.energy - e_after_write
        assert extra == pytest.approx(8 * MEMRISTOR_5NM.write_energy)

    def test_device_write_counter(self):
        memory = CrossbarMemory(2, 4)
        memory.write_int(0, 5)
        memory.write_int(1, 2)
        assert memory.stats.device_writes == 8

    def test_stats_merge(self):
        a = AccessStats(reads=1, writes=2, device_writes=3, energy=1e-15, time=1e-10)
        b = AccessStats(reads=4, writes=5, device_writes=6, energy=2e-15, time=3e-10)
        merged = a.merge(b)
        assert merged.reads == 5
        assert merged.writes == 7
        assert merged.device_writes == 9
        assert merged.energy == pytest.approx(3e-15)
        assert merged.time == pytest.approx(4e-10)
