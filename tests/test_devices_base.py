"""Tests for repro.devices.base."""

import pytest

from repro.devices.base import (
    IdealBipolarMemristor,
    LOGIC_THRESHOLD,
    SwitchingThresholds,
)
from repro.errors import DeviceError


class TestSwitchingThresholds:
    def test_defaults(self):
        t = SwitchingThresholds()
        assert t.v_set > 0 > t.v_reset

    def test_rejects_negative_set(self):
        with pytest.raises(DeviceError):
            SwitchingThresholds(v_set=-0.5)

    def test_rejects_positive_reset(self):
        with pytest.raises(DeviceError):
            SwitchingThresholds(v_reset=0.5)


class TestConstruction:
    def test_default_state_is_hrs(self, device):
        assert device.x == 0.0
        assert device.as_bit() == 0

    def test_rejects_r_on_above_r_off(self):
        with pytest.raises(DeviceError):
            IdealBipolarMemristor(r_on=1e6, r_off=1e3)

    def test_rejects_equal_resistances(self):
        with pytest.raises(DeviceError):
            IdealBipolarMemristor(r_on=1e4, r_off=1e4)

    def test_rejects_negative_resistance(self):
        with pytest.raises(DeviceError):
            IdealBipolarMemristor(r_on=-1.0)

    def test_rejects_state_outside_unit_interval(self):
        with pytest.raises(DeviceError):
            IdealBipolarMemristor(x=1.5)

    def test_rejects_nonpositive_switch_time(self):
        with pytest.raises(DeviceError):
            IdealBipolarMemristor(switch_time=0.0)


class TestResistance:
    def test_hrs_resistance(self, device):
        assert device.resistance() == pytest.approx(device.r_off)

    def test_lrs_resistance(self, device):
        device.force_set()
        assert device.resistance() == pytest.approx(device.r_on)

    def test_intermediate_state_between_bounds(self):
        d = IdealBipolarMemristor(x=0.5)
        assert d.r_on < d.resistance() < d.r_off

    def test_conductance_is_reciprocal(self, device):
        assert device.conductance() == pytest.approx(1.0 / device.resistance())

    def test_current_is_ohmic(self, device):
        v = 0.3
        assert device.current(v) == pytest.approx(v / device.resistance())

    def test_conductance_interpolation_is_linear(self):
        # G(x) = x/r_on + (1-x)/r_off by the filamentary convention.
        d = IdealBipolarMemristor(x=0.25)
        g = 0.25 / d.r_on + 0.75 / d.r_off
        assert d.conductance() == pytest.approx(g)


class TestDigitalInterface:
    def test_write_and_read_bits(self, device):
        device.write_bit(1)
        assert device.as_bit() == 1
        device.write_bit(0)
        assert device.as_bit() == 0

    def test_write_rejects_non_bits(self, device):
        with pytest.raises(DeviceError):
            device.write_bit(2)

    def test_logic_threshold_boundary(self):
        assert IdealBipolarMemristor(x=LOGIC_THRESHOLD).as_bit() == 1
        assert IdealBipolarMemristor(x=LOGIC_THRESHOLD - 0.01).as_bit() == 0

    def test_force_set_reset(self, device):
        device.force_set()
        assert device.x == 1.0
        device.force_reset()
        assert device.x == 0.0

    def test_state_setter_validates(self, device):
        with pytest.raises(DeviceError):
            device.x = -0.1


class TestAbruptSwitching:
    def test_full_set_pulse(self, device):
        device.apply_voltage(1.5, device.switch_time)
        assert device.as_bit() == 1

    def test_full_reset_pulse(self, device):
        device.force_set()
        device.apply_voltage(-1.5, device.switch_time)
        assert device.as_bit() == 0

    def test_subthreshold_pulse_is_retained(self, device):
        # Arbitrarily long sub-threshold stress must not move the state:
        # the zero-standby-power/retention property.
        device.apply_voltage(0.5, 10.0)
        assert device.x == 0.0

    def test_subthreshold_negative_retained(self, device):
        device.force_set()
        device.apply_voltage(-0.5, 10.0)
        assert device.x == 1.0

    def test_partial_pulse_moves_partially(self, device):
        device.apply_voltage(1.5, device.switch_time / 2)
        assert device.x == pytest.approx(0.5)

    def test_two_half_pulses_complete_a_switch(self, device):
        device.apply_voltage(1.5, device.switch_time / 2)
        device.apply_voltage(1.5, device.switch_time / 2)
        assert device.x == pytest.approx(1.0)

    def test_exact_threshold_switches(self, device):
        device.apply_voltage(device.thresholds.v_set, device.switch_time)
        assert device.as_bit() == 1

    def test_would_switch(self, device):
        assert device.would_switch(1.2)
        assert device.would_switch(-1.2)
        assert not device.would_switch(0.9)
        assert not device.would_switch(-0.9)

    def test_negative_duration_rejected(self, device):
        with pytest.raises(DeviceError):
            device.apply_voltage(1.5, -1.0)

    def test_set_is_idempotent(self, device):
        device.apply_voltage(1.5, device.switch_time)
        device.apply_voltage(1.5, device.switch_time)
        assert device.x == 1.0
