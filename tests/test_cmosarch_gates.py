"""Tests for the CMOS gate-block cost model."""

import pytest

from repro.cmosarch import CLA_ADDER_32, CMOS_COMPARATOR, GateBlock
from repro.devices import FINFET_22NM
from repro.errors import ArchitectureError
from repro.units import FJ, PS, UM2


class TestGateBlock:
    def test_latency(self):
        block = GateBlock("x", gates=10, depth=3)
        assert block.latency == pytest.approx(3 * 14 * PS)

    def test_dynamic_energy(self):
        block = GateBlock("x", gates=10, depth=3)
        assert block.dynamic_energy == pytest.approx(10 * 2.45e-18, rel=1e-9, abs=0)

    def test_leakage_power(self):
        block = GateBlock("x", gates=100, depth=1)
        assert block.leakage_power == pytest.approx(100 * 42.83e-9)

    def test_leakage_energy_per_cycle_uses_table1_duration(self):
        block = GateBlock("x", gates=1, depth=1)
        idle = FINFET_22NM.cycle_time - FINFET_22NM.gate_delay
        assert block.leakage_energy_per_cycle() == pytest.approx(
            42.83e-9 * idle
        )

    def test_area(self):
        block = GateBlock("x", gates=4, depth=1)
        assert block.area == pytest.approx(4 * 0.248 * UM2)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            GateBlock("bad", gates=0, depth=1)
        with pytest.raises(ArchitectureError):
            GateBlock("bad", gates=1, depth=0)


class TestTable1Blocks:
    def test_cla_208_gates_18_delays(self):
        assert CLA_ADDER_32.gates == 208
        assert CLA_ADDER_32.depth == 18

    def test_cla_latency_252ps(self):
        """Table 1: 'Adder latency: 252ps = 18*14ps'."""
        assert CLA_ADDER_32.latency == pytest.approx(252 * PS)

    def test_comparator_structure(self):
        assert CMOS_COMPARATOR.gates == 3
        assert CMOS_COMPARATOR.depth == 2
