"""Tests for the junction → tile → system-cost integration study."""

import math

import pytest

from repro.core import TilingStudy, feasible_tile_edge
from repro.crossbar.selector import CRSJunction, OneSelectorOneR
from repro.errors import ArchitectureError


class TestFeasibleTileEdge:
    def test_1r_limited_to_tiny_tiles(self):
        assert feasible_tile_edge(None, edges=(2, 4, 8)) <= 4

    def test_crs_sustains_large_tiles(self):
        factory = lambda r, c: CRSJunction()
        assert feasible_tile_edge(factory, edges=(2, 8, 16)) == 16

    def test_selector_sustains_large_tiles(self):
        factory = lambda r, c: OneSelectorOneR()
        assert feasible_tile_edge(factory, edges=(2, 8, 16)) == 16

    def test_multistage_rescues_1r(self):
        plain = feasible_tile_edge(None, edges=(2, 8, 16))
        multi = feasible_tile_edge(None, edges=(2, 8, 16), multistage=True)
        assert multi == 16 > plain

    def test_impossible_margin_returns_zero(self):
        assert feasible_tile_edge(None, min_margin=1e9, edges=(2, 4)) == 0


class TestTilingStudy:
    @pytest.fixture(scope="class")
    def comparison(self):
        return TilingStudy(devices=10**6).compare()

    def test_all_families_evaluated(self, comparison):
        assert set(comparison) == {"1R", "1S1R", "CRS"}

    def test_crs_minimises_periphery_tax(self, comparison):
        """The system-level argument for Section IV.B's CRS cell: its
        big tiles amortise the CMOS periphery far better than 1R."""
        assert (comparison["CRS"].periphery_area_ratio
                < comparison["1R"].periphery_area_ratio / 10)

    def test_1r_pays_for_tiny_tiles(self, comparison):
        assert comparison["1R"].tile_edge <= 4
        assert comparison["1R"].tiles > comparison["CRS"].tiles * 100

    def test_crs_doubles_junction_area(self, comparison):
        assert comparison["CRS"].junction_area == pytest.approx(
            2 * comparison["1R"].junction_area
        )

    def test_tile_count_covers_device_budget(self, comparison):
        for name, report in comparison.items():
            devices_per_junction = 2 if name == "CRS" else 1
            junctions = math.ceil(10**6 / devices_per_junction)
            capacity = report.tiles * report.tile_edge ** 2
            assert capacity >= junctions

    def test_multistage_variant_fixes_1r(self):
        study = TilingStudy(devices=10**5)
        fixed = study.compare(multistage_for_1r=True)["1R"]
        plain = study.compare()["1R"]
        assert fixed.tile_edge > plain.tile_edge
        assert fixed.periphery_area_ratio < plain.periphery_area_ratio

    def test_infeasible_report(self):
        study = TilingStudy(devices=100, min_margin=1e9)
        report = study.evaluate_junction("1R", None, edges=(2,))
        assert not report.feasible
        assert math.isinf(report.periphery_area)

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            TilingStudy(devices=0)
        with pytest.raises(ArchitectureError):
            TilingStudy(devices=10, min_margin=0.5)
        with pytest.raises(ArchitectureError):
            TilingStudy(devices=10, cell_area=0.0)
