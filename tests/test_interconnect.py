"""Tests for the CMOL-style programmable interconnect."""

import pytest

from repro.errors import CrossbarError
from repro.interconnect import Net, ProgrammableFabric


class TestFabricStructure:
    def test_switch_count_grid(self):
        # 4x4 grid: 3*4 vertical + 4*3 horizontal = 24 segments.
        assert ProgrammableFabric(4, 4).switch_count == 24

    def test_diagonals_add_switches(self):
        plain = ProgrammableFabric(4, 4).switch_count
        diag = ProgrammableFabric(4, 4, diagonals=True).switch_count
        assert diag == plain + 9

    def test_minimum_size(self):
        with pytest.raises(CrossbarError):
            ProgrammableFabric(1, 4)

    def test_net_validation(self):
        with pytest.raises(CrossbarError):
            Net((0, 0), (0, 0))


class TestRouting:
    def test_single_net_shortest_path(self):
        fabric = ProgrammableFabric(5, 5)
        route = fabric.route_net(Net((0, 0), (4, 4)))
        assert route is not None
        assert route.segments == fabric.manhattan((0, 0), (4, 4))

    def test_path_is_connected(self):
        fabric = ProgrammableFabric(5, 5)
        route = fabric.route_net(Net((0, 3), (4, 1)))
        for a, b in zip(route.path, route.path[1:]):
            assert fabric.manhattan(a, b) == 1

    def test_routes_are_switch_disjoint(self):
        fabric = ProgrammableFabric(6, 6)
        nets = [Net((0, i), (5, i)) for i in range(6)]
        result = fabric.route_all(nets)
        assert result.success_ratio == 1.0
        edges = []
        for route in result.routes:
            for a, b in zip(route.path, route.path[1:]):
                edges.append(fabric._edge_key(a, b))
        assert len(edges) == len(set(edges))

    def test_congestion_causes_failures(self):
        """Many long nets through a small fabric cannot all be
        switch-disjoint."""
        fabric = ProgrammableFabric(3, 3)
        nets = [Net((0, 0), (2, 2)), Net((0, 2), (2, 0)),
                Net((0, 1), (2, 1)), Net((1, 0), (1, 2)),
                Net((0, 0), (2, 1)), Net((0, 2), (2, 1))]
        result = fabric.route_all(nets)
        assert result.failed
        assert result.success_ratio < 1.0

    def test_short_first_order_helps(self):
        def build_nets():
            return [Net((0, 0), (5, 5)), Net((2, 2), (2, 3)),
                    Net((3, 3), (3, 4)), Net((0, 5), (5, 0))]

        a = ProgrammableFabric(6, 6)
        b = ProgrammableFabric(6, 6)
        given = a.route_all(build_nets(), order="given")
        short = b.route_all(build_nets(), order="short-first")
        assert short.success_ratio >= given.success_ratio

    def test_reset_releases_switches(self):
        fabric = ProgrammableFabric(4, 4)
        fabric.route_net(Net((0, 0), (3, 3)))
        assert fabric.switches_on > 0
        fabric.reset()
        assert fabric.switches_on == 0
        assert fabric.route_net(Net((0, 0), (3, 3))) is not None

    def test_cell_bounds_checked(self):
        fabric = ProgrammableFabric(3, 3)
        with pytest.raises(CrossbarError):
            fabric.route_net(Net((0, 0), (9, 9)))

    def test_order_validated(self):
        fabric = ProgrammableFabric(3, 3)
        with pytest.raises(CrossbarError):
            fabric.route_all([], order="random")


class TestCosts:
    def test_configuration_cost(self):
        fabric = ProgrammableFabric(5, 5)
        fabric.route_net(Net((0, 0), (0, 4)))
        cost = fabric.configuration_cost()
        assert cost["switch_writes"] == 4
        assert cost["energy"] == pytest.approx(
            4 * fabric.technology.write_energy
        )
        assert cost["area"] > 0

    def test_utilisation(self):
        fabric = ProgrammableFabric(4, 4)
        assert fabric.utilisation() == 0.0
        fabric.route_net(Net((0, 0), (0, 1)))
        assert fabric.utilisation() == pytest.approx(1 / 24)

    def test_wirelength(self):
        fabric = ProgrammableFabric(5, 5)
        result = fabric.route_all([Net((0, 0), (0, 2)), Net((1, 0), (3, 0))])
        assert result.wirelength() == 4
