"""Tests for tables, reports and sweeps."""

import pytest

from repro.analysis import (
    adder_width_sweep,
    crossbar_scaling_sweep,
    format_sci,
    format_table,
    hit_ratio_sweep,
    render_machine_reports,
    render_table2,
)
from repro.errors import ReproError


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["1"]])

    def test_format_sci(self):
        assert format_sci(2.021e-6) == "2.0210e-06"


class TestRenderers:
    def test_table2_contains_paper_values(self):
        out = render_table2()
        assert "9.2570e-21" in out      # paper CIM math EDP
        assert "conventional" in out
        assert "improvement" in out

    def test_machine_reports_render(self):
        out = render_machine_reports()
        assert "conventional-dna" in out
        assert "cim-math" in out


class TestHitRatioSweep:
    def test_monotonic_conventional_time(self):
        rows = hit_ratio_sweep("dna", hit_ratios=(0.0, 0.5, 1.0))
        times = [r["conv_time"] for r in rows]
        assert times == sorted(times, reverse=True)

    def test_improvement_persists_across_hit_ratios(self):
        """Ablation A: CIM's efficiency win does not depend on the
        paper's specific hit-ratio choice."""
        for row in hit_ratio_sweep("math", hit_ratios=(0.5, 0.9, 0.98)):
            assert row["efficiency_improvement"] > 100

    def test_unknown_application(self):
        with pytest.raises(ReproError):
            hit_ratio_sweep("quantum")


class TestAdderWidthSweep:
    def test_rows_per_width(self):
        rows = adder_width_sweep((8, 16, 32))
        assert [r["width"] for r in rows] == [8, 16, 32]

    def test_cla_is_faster_tc_is_smaller(self):
        """The latency/area trade the paper describes: CMOS logic wins
        raw latency, memristor adders win footprint by ~100x."""
        from repro.devices import FINFET_22NM, MEMRISTOR_5NM

        for row in adder_width_sweep((32,)):
            assert row["cla_latency"] < row["tc_latency"]
            cla_area = row["cla_gates"] * FINFET_22NM.gate_area
            tc_area = row["tc_memristors"] * MEMRISTOR_5NM.cell_area
            assert tc_area < cla_area / 100

    def test_tc_energy_below_cla_system_energy(self):
        """Per-op, the memristor adder's dynamic energy beats the CMOS
        adder's *system* energy (which carries the cache static bill) by
        orders of magnitude — the actual Table 2 comparison.  Raw CLA
        dynamic energy alone is smaller than the TC-adder's: the win
        comes from eliminating the memory system, not the ALU."""
        for row in adder_width_sweep((32,)):
            assert row["tc_energy"] < row["cla_system_energy"] / 100
            assert row["cla_energy"] < row["tc_energy"]

    def test_width_validation(self):
        with pytest.raises(ReproError):
            adder_width_sweep((10,))


class TestCrossbarScalingSweep:
    def test_1r_margin_degrades_but_crs_holds(self):
        rows = crossbar_scaling_sweep(sizes=(2, 8))
        assert rows[-1]["margin_1R"] < rows[0]["margin_1R"]
        assert rows[-1]["margin_CRS"] > 10
