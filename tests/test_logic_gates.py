"""Tests for the IMPLY gate library: truth tables, step counts, and
electrical/functional agreement."""

import itertools

import pytest

from repro.errors import LogicError
from repro.logic import GATES, ImplyMachine, build_gate

EXPECTED = {
    "NOT": lambda a: 1 - a,
    "OR": lambda a, b: a | b,
    "NAND": lambda a, b: 1 - (a & b),
    "AND": lambda a, b: a & b,
    "NOR": lambda a, b: 1 - (a | b),
    "XOR": lambda a, b: a ^ b,
    "XNOR": lambda a, b: 1 - (a ^ b),
}

#: Contracted compute-step and device counts (module docstring table).
COSTS = {
    "NOT": (2, 2),
    "OR": (3, 3),
    "NAND": (3, 3),
    "AND": (5, 4),
    "NOR": (5, 3),
    "XOR": (11, 5),
    "XNOR": (9, 5),
}


def input_patterns(prog):
    return list(itertools.product((0, 1), repeat=len(prog.inputs)))


class TestTruthTables:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_functional_semantics(self, name):
        prog = build_gate(name)
        fn = EXPECTED[name]
        for bits in input_patterns(prog):
            out = prog.run_functional(dict(zip(prog.inputs, bits)))["out"]
            assert out == fn(*bits), f"{name}{bits}"

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_electrical_matches_functional(self, name):
        prog = build_gate(name)
        for bits in input_patterns(prog):
            machine = ImplyMachine()
            machine.run_and_check(prog, dict(zip(prog.inputs, bits)))


class TestCosts:
    @pytest.mark.parametrize("name", sorted(COSTS))
    def test_step_and_device_counts(self, name):
        prog = build_gate(name)
        steps, devices = COSTS[name]
        assert prog.compute_step_count == steps, name
        assert prog.device_count == devices, name

    def test_nand_is_three_steps(self):
        """Table 1: 'an NAND takes 3 steps'."""
        assert build_gate("NAND").compute_step_count == 3

    def test_xor_with_loads_matches_paper_13(self):
        """Table 1: 'an XOR takes 13 steps' — 11 compute + 2 loads."""
        prog = build_gate("XOR")
        assert prog.step_count == 13

    def test_xor_uses_five_memristors(self):
        """Table 1: 'XOR: 5' memristors."""
        assert build_gate("XOR").device_count == 5

    def test_nand_uses_three_memristors(self):
        """Table 1: 'NAND: 3' memristors."""
        assert build_gate("NAND").device_count == 3


class TestRegistry:
    def test_case_insensitive(self):
        assert build_gate("xor").name == "XOR"

    def test_unknown_gate(self):
        with pytest.raises(LogicError):
            build_gate("XAND")

    def test_all_registered_gates_validate(self):
        for name in GATES:
            build_gate(name).validate()

    def test_builders_return_fresh_programs(self):
        a = build_gate("AND")
        b = build_gate("AND")
        assert a is not b
        a.false("extra")
        assert b.step_count != a.step_count
