"""Property-based tests for the crossbar solver: physics invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.crossbar.solver import (
    clear_factorization_cache,
    scipy_available,
    solve_ideal_wires,
    solve_with_wire_resistance,
)

conductances = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    elements=st.floats(min_value=1e-7, max_value=1e-2),
)
drive_voltage = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)

#: Conductance range for the wire-resistance properties, kept a few
#: decades away from the wire conductance so convergence tolerances are
#: meaningful for every drawn example.
wire_conductances = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    elements=st.floats(min_value=1e-5, max_value=1e-3),
)


def _drives(g, v):
    """One driven row (first) and one driven column (last)."""
    rows, cols = g.shape
    return {0: v}, {cols - 1: 0.0}


class TestKirchhoffInvariants:
    @given(g=conductances, v=drive_voltage)
    @settings(max_examples=80, deadline=None)
    def test_current_conservation(self, g, v):
        """Total current injected by rows equals total absorbed by
        columns (charge conservation)."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        assert np.isclose(sol.row_currents.sum(), sol.col_currents.sum())

    @given(g=conductances, v=drive_voltage)
    @settings(max_examples=80, deadline=None)
    def test_floating_node_voltages_bounded_by_rails(self, g, v):
        """No passive network node can float outside the driven range."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        lo, hi = min(0.0, v), max(0.0, v)
        eps = 1e-9
        assert (sol.row_voltages >= lo - eps).all()
        assert (sol.row_voltages <= hi + eps).all()
        assert (sol.col_voltages >= lo - eps).all()
        assert (sol.col_voltages <= hi + eps).all()

    @given(g=conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_power_non_negative(self, g, v):
        """Dissipated power in a passive network is non-negative."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {0: 0.0})
        power = (sol.junction_currents ** 2 / g).sum()
        assert power >= 0

    @given(g=conductances, v=drive_voltage, scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_linearity_in_drive_voltage(self, g, v, scale):
        """Scaling the drive scales every current linearly."""
        rows, cols = g.shape
        sol1 = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        sol2 = solve_ideal_wires(g, {0: v * scale}, {cols - 1: 0.0})
        assert np.allclose(
            sol2.junction_currents, sol1.junction_currents * scale,
            rtol=1e-6, atol=1e-12,
        )

    @given(g=conductances)
    @settings(max_examples=60, deadline=None)
    def test_zero_drive_zero_current(self, g):
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: 0.0}, {cols - 1: 0.0})
        assert np.allclose(sol.junction_currents, 0.0, atol=1e-15)

    @given(g=conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_superposition_of_sources(self, g, v):
        """Driving two rows = sum of driving each alone (with the other
        grounded) — linear-network superposition, using all-driven rows
        so the floating sets match."""
        rows, cols = g.shape
        if rows < 2:
            return
        drive_both = {0: v, 1: v / 2}
        drive_a = {0: v, 1: 0.0}
        drive_b = {0: 0.0, 1: v / 2}
        ground = {c: 0.0 for c in range(cols)}
        both = solve_ideal_wires(g, drive_both, ground)
        a = solve_ideal_wires(g, drive_a, ground)
        b = solve_ideal_wires(g, drive_b, ground)
        assert np.allclose(
            both.junction_currents,
            a.junction_currents + b.junction_currents,
            rtol=1e-6, atol=1e-12,
        )


class TestWireSolverProperties:
    """Properties tying the wire-resistance solver to the ideal one and
    its two backends/cache modes to each other."""

    @given(g=wire_conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_converges_to_ideal_as_wire_resistance_vanishes(self, g, v):
        """wire_resistance -> 0 recovers the ideal-wire solution.

        Tolerance is set by the float64 nodal stamp: at g_wire = 1e6 S
        against junctions >= 1e-5 S the representable diagonal carries a
        spurious-leak error of ~1e-4 relative, well inside 1e-3.
        """
        row_drive, col_drive = _drives(g, v)
        ideal = solve_ideal_wires(g, row_drive, col_drive)
        wired = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=1e-6
        )
        sel = g.shape[1] - 1
        assert wired.col_currents[sel] == pytest.approx(
            ideal.col_currents[sel], rel=1e-3, abs=1e-15
        )
        assert wired.row_currents[0] == pytest.approx(
            ideal.row_currents[0], rel=1e-3, abs=1e-15
        )

    @given(g=wire_conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=40, deadline=None)
    def test_current_conservation(self, g, v):
        row_drive, col_drive = _drives(g, v)
        sol = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=1e-3
        )
        assert np.isclose(sol.row_currents.sum(), sol.col_currents.sum(),
                          rtol=1e-9, atol=1e-18)

    @pytest.mark.skipif(not scipy_available(),
                        reason="scipy (repro[fast]) not installed")
    @given(
        g=wire_conductances,
        v=st.floats(min_value=0.1, max_value=2.0),
        wire_resistance=st.floats(min_value=1e-2, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_sparse_and_dense_backends_agree(self, g, v, wire_resistance):
        """Same netlist, either factorization: bit-close answers.

        The two backends factor the identical float64 matrix with
        different elimination orders, so they can differ by eps times
        the condition number (<= 1e7 over these ranges).
        """
        row_drive, col_drive = _drives(g, v)
        sparse = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=wire_resistance,
            backend="sparse",
        )
        dense = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=wire_resistance,
            backend="dense",
        )
        assert np.allclose(sparse.row_voltages, dense.row_voltages,
                           rtol=1e-6, atol=1e-12)
        assert np.allclose(sparse.junction_currents, dense.junction_currents,
                           rtol=1e-6, atol=1e-16)

    @given(
        g=wire_conductances,
        v=st.floats(min_value=0.1, max_value=2.0),
        wire_resistance=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=25, deadline=None)
    def test_cached_solve_identical_to_cold(self, g, v, wire_resistance):
        """A cache hit must return bit-identical results to a cold
        factorization of the same system."""
        row_drive, col_drive = _drives(g, v)
        clear_factorization_cache()
        cold = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=wire_resistance
        )
        warm = solve_with_wire_resistance(
            g, row_drive, col_drive, wire_resistance=wire_resistance
        )
        np.testing.assert_array_equal(cold.row_voltages, warm.row_voltages)
        np.testing.assert_array_equal(cold.col_voltages, warm.col_voltages)
        np.testing.assert_array_equal(cold.junction_currents,
                                      warm.junction_currents)
