"""Property-based tests for the crossbar solver: physics invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.crossbar.solver import solve_ideal_wires

conductances = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    ),
    elements=st.floats(min_value=1e-7, max_value=1e-2),
)
drive_voltage = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


class TestKirchhoffInvariants:
    @given(g=conductances, v=drive_voltage)
    @settings(max_examples=80, deadline=None)
    def test_current_conservation(self, g, v):
        """Total current injected by rows equals total absorbed by
        columns (charge conservation)."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        assert np.isclose(sol.row_currents.sum(), sol.col_currents.sum())

    @given(g=conductances, v=drive_voltage)
    @settings(max_examples=80, deadline=None)
    def test_floating_node_voltages_bounded_by_rails(self, g, v):
        """No passive network node can float outside the driven range."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        lo, hi = min(0.0, v), max(0.0, v)
        eps = 1e-9
        assert (sol.row_voltages >= lo - eps).all()
        assert (sol.row_voltages <= hi + eps).all()
        assert (sol.col_voltages >= lo - eps).all()
        assert (sol.col_voltages <= hi + eps).all()

    @given(g=conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=80, deadline=None)
    def test_power_non_negative(self, g, v):
        """Dissipated power in a passive network is non-negative."""
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: v}, {0: 0.0})
        power = (sol.junction_currents ** 2 / g).sum()
        assert power >= 0

    @given(g=conductances, v=drive_voltage, scale=st.floats(min_value=0.1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_linearity_in_drive_voltage(self, g, v, scale):
        """Scaling the drive scales every current linearly."""
        rows, cols = g.shape
        sol1 = solve_ideal_wires(g, {0: v}, {cols - 1: 0.0})
        sol2 = solve_ideal_wires(g, {0: v * scale}, {cols - 1: 0.0})
        assert np.allclose(
            sol2.junction_currents, sol1.junction_currents * scale,
            rtol=1e-6, atol=1e-12,
        )

    @given(g=conductances)
    @settings(max_examples=60, deadline=None)
    def test_zero_drive_zero_current(self, g):
        rows, cols = g.shape
        sol = solve_ideal_wires(g, {0: 0.0}, {cols - 1: 0.0})
        assert np.allclose(sol.junction_currents, 0.0, atol=1e-15)

    @given(g=conductances, v=st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=60, deadline=None)
    def test_superposition_of_sources(self, g, v):
        """Driving two rows = sum of driving each alone (with the other
        grounded) — linear-network superposition, using all-driven rows
        so the floating sets match."""
        rows, cols = g.shape
        if rows < 2:
            return
        drive_both = {0: v, 1: v / 2}
        drive_a = {0: v, 1: 0.0}
        drive_b = {0: 0.0, 1: v / 2}
        ground = {c: 0.0 for c in range(cols)}
        both = solve_ideal_wires(g, drive_both, ground)
        a = solve_ideal_wires(g, drive_a, ground)
        b = solve_ideal_wires(g, drive_b, ground)
        assert np.allclose(
            both.junction_currents,
            a.junction_currents + b.junction_currents,
            rtol=1e-6, atol=1e-12,
        )
