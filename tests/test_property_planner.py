"""Property tests: predicted costs equal executed costs.

The unified CostModel seam's contract, hypothesis-enforced: for every
builtin kernel, any width, and any batch size, the ledger the planner's
:class:`~repro.spec.costmodel.CIMCostModel` *predicts* is row-for-row
identical to the ledger the analytical executor *bills* when the same
batch actually runs — same components, same quantities, same floats,
same provenance strings.  A divergence here means the offload planner
would route requests using prices the serving layer never charges.
"""

from hypothesis import given, settings, strategies as st

from repro.engine import resolve_kernel, run_kernel
from repro.spec import TABLE1, CIMCostModel, Quantity

KERNELS = ("comparator", "word-compare", "adder", "cam-match")

#: comparator is fixed-width; the rest accept a word width.
WIDTHS = {
    "comparator": (2,),
    "word-compare": (4, 32),
    "adder": (8, 32),
    "cam-match": (4, 16),
}

SPECS = {
    "table1": TABLE1,
    "derived": TABLE1.derive({"memristor.write_energy": 3e-15,
                              "memristor.write_time": 150e-12}),
}


@given(
    kernel_name=st.sampled_from(KERNELS),
    width_pick=st.integers(min_value=0, max_value=1),
    words=st.integers(min_value=1, max_value=10**9),
    spec_name=st.sampled_from(sorted(SPECS)),
)
@settings(max_examples=120, deadline=None)
def test_predicted_ledger_equals_executed_ledger(
    kernel_name, width_pick, words, spec_name
):
    widths = WIDTHS[kernel_name]
    width = widths[width_pick % len(widths)]
    spec = SPECS[spec_name]
    kernel = resolve_kernel(kernel_name, width)

    predicted = CIMCostModel().estimate(kernel, words, spec)
    executed = run_kernel(
        kernel, None, backend="analytical", words=words, spec=spec
    ).ledger

    assert executed is not None
    assert predicted.as_rows() == executed.as_rows()
    assert (predicted.total(Quantity.ENERGY)
            == executed.total(Quantity.ENERGY))
    assert (predicted.total(Quantity.LATENCY)
            == executed.total(Quantity.LATENCY))


@given(words=st.integers(min_value=1, max_value=10**6))
@settings(max_examples=30, deadline=None)
def test_spec_overrides_reprice_cost_free_kernels(words):
    """Kernels without an attached ``*Cost`` object (word-compare) are
    priced from the spec's memristor, so a derived technology must move
    both the prediction and the executed bill — identically."""
    kernel = resolve_kernel("word-compare", 16)
    base = CIMCostModel().estimate(kernel, words, SPECS["table1"])
    derived = CIMCostModel().estimate(kernel, words, SPECS["derived"])
    assert (base.total(Quantity.ENERGY)
            != derived.total(Quantity.ENERGY))
    executed = run_kernel(
        kernel, None, backend="analytical", words=words,
        spec=SPECS["derived"],
    ).ledger
    assert executed is not None
    assert derived.as_rows() == executed.as_rows()
