"""Tests for crossbar-mapped neural inference."""

import numpy as np
import pytest

from repro.analog import (
    AnalogSpec,
    CrossbarMLP,
    LayerWeights,
    fit_two_layer_classifier,
    make_blobs,
    relu,
)
from repro.errors import CrossbarError


@pytest.fixture(scope="module")
def blobs():
    return make_blobs(samples=240, classes=3, features=4, spread=0.5, seed=1)


@pytest.fixture(scope="module")
def trained(blobs):
    xs, labels = blobs
    return fit_two_layer_classifier(xs, labels, hidden=24, classes=3, seed=2)


class TestHelpers:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])),
                              np.array([0.0, 0.0, 2.0]))

    def test_make_blobs_shapes(self, blobs):
        xs, labels = blobs
        assert xs.shape == (240, 4)
        assert labels.shape == (240,)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_make_blobs_seeded(self):
        a = make_blobs(seed=5)
        b = make_blobs(seed=5)
        assert np.allclose(a[0], b[0])

    def test_layer_weights_validation(self):
        with pytest.raises(CrossbarError):
            LayerWeights(np.ones((2, 3)), np.ones(2))


class TestTraining:
    def test_classifier_fits_blobs(self, blobs, trained):
        xs, labels = blobs
        mlp = CrossbarMLP(trained)
        assert mlp.accuracy(xs, labels) > 0.9

    def test_layer_chain_validated(self):
        bad = [
            LayerWeights(np.ones((4, 8)), np.zeros(8)),
            LayerWeights(np.ones((9, 2)), np.zeros(2)),
        ]
        with pytest.raises(CrossbarError):
            CrossbarMLP(bad)

    def test_training_validation(self):
        with pytest.raises(CrossbarError):
            fit_two_layer_classifier(np.ones(10), np.zeros(10))
        with pytest.raises(CrossbarError):
            fit_two_layer_classifier(np.ones((10, 2)), np.zeros(5))


class TestAnalogInference:
    def test_ideal_crossbars_match_float(self, blobs, trained):
        xs, _ = blobs
        mlp = CrossbarMLP(trained)
        for x in xs[:10]:
            assert np.allclose(mlp.forward_analog(x), mlp.forward_float(x),
                               atol=1e-9)

    def test_quantised_inference_degrades_gracefully(self, blobs, trained):
        xs, labels = blobs
        ideal = CrossbarMLP(trained).accuracy(xs, labels)
        quantised = CrossbarMLP(
            trained, spec=AnalogSpec(levels=32)
        ).accuracy(xs, labels)
        assert quantised > 0.7
        assert quantised <= ideal + 0.05

    def test_noise_sweep_monotone_on_average(self, blobs, trained):
        """More programming noise -> lower accuracy (averaged over
        seeds to tame Monte-Carlo jitter)."""
        xs, labels = blobs

        def mean_accuracy(sigma):
            scores = [
                CrossbarMLP(
                    trained, spec=AnalogSpec(sigma=sigma), seed=seed
                ).accuracy(xs, labels)
                for seed in range(3)
            ]
            return sum(scores) / len(scores)

        clean = mean_accuracy(0.0)
        noisy = mean_accuracy(0.4)
        assert clean > noisy

    def test_predict_returns_class_index(self, blobs, trained):
        xs, _ = blobs
        mlp = CrossbarMLP(trained)
        assert mlp.predict(xs[0]) in (0, 1, 2)

    def test_accuracy_validation(self, trained):
        mlp = CrossbarMLP(trained)
        with pytest.raises(CrossbarError):
            mlp.accuracy(np.ones((3, 4)), np.zeros(2))


class TestCosts:
    def test_latency_one_pulse_per_layer(self, trained):
        mlp = CrossbarMLP(trained)
        per_pulse = mlp.arrays[0].positive.latency()
        assert mlp.inference_latency() == pytest.approx(
            len(trained) * per_pulse
        )

    def test_energy_positive(self, blobs, trained):
        xs, _ = blobs
        mlp = CrossbarMLP(trained)
        assert mlp.inference_energy(xs[0]) > 0

    def test_area_counts_both_halves(self, trained):
        mlp = CrossbarMLP(trained)
        expected = sum(
            2 * a.positive.rows * a.positive.cols
            * a.positive.technology.cell_area
            for a in mlp.arrays
        )
        assert mlp.area() == pytest.approx(expected)

    def test_empty_layer_list_rejected(self):
        with pytest.raises(CrossbarError):
            CrossbarMLP([])
