"""The spec layer is the single source of every Table 1 number.

PR 4 made :data:`repro.spec.TABLE1` that source, keeping the old
module-level constants as deprecated aliases; PR 10 removed the aliases
(replacements stable for more than two PRs, the ``_compat`` removal
bar).  This suite pins the spec values **by exact float equality** (bit
identity matters: the Table 2 golden test below pins the reproduced
metrics to their pre-refactor hex representations), asserts the removed
aliases now raise, and pins the spec's own identity (digest, derive
semantics).
"""

import pytest

from repro.cmosarch.gates import CLA_ADDER_32, CMOS_COMPARATOR
from repro.core import classification, presets, roofline
from repro.core.evaluate import table2
from repro.core.periphery import PeripherySpec
from repro.devices.technology import (
    CACHE_8KB_DNA,
    CACHE_8KB_MATH,
    FINFET_22NM,
    MEMRISTOR_5NM,
)
from repro.engine import CAMMatchCost
from repro.logic.adders import TCAdderCost
from repro.logic.comparator import ComparatorCost
from repro.spec import TABLE1

#: TABLE1's frozen identity.  Changing any Table 1 number (or the tree
#: shape) changes this digest — which is exactly the point: the change
#: must be deliberate and this pin updated with it.
TABLE1_DIGEST = "9b6315844fba5b4d5e1b7fe0b41a0cb072e55114a89893838a278d3067c04203"

#: Table 2 as reproduced before the spec refactor, in exact float hex
#: (``float.hex()``) — the golden bit-identity reference.
GOLDEN_TABLE2_HEX = {
    ("dna", "cim"): {
        "energy_delay_per_op": "0x1.0d3d270570ddep-48",
        "computing_efficiency": "0x1.43603a9638e39p+44",
        "performance_per_area": "0x1.11d6af3508531p+42",
    },
    ("dna", "conventional"): {
        "energy_delay_per_op": "0x1.71db1a00e2297p-27",
        "computing_efficiency": "0x1.d6a08b5c39df5p+22",
        "performance_per_area": "0x1.8e9efe9c33fbcp+28",
    },
    ("math", "cim"): {
        "energy_delay_per_op": "0x1.5db7d2da24f49p-67",
        "computing_efficiency": "0x1.c6bf526340000p+41",
        "performance_per_area": "0x1.b1a786d013b4ap+49",
    },
    ("math", "conventional"): {
        "energy_delay_per_op": "0x1.bc3e23bc87faap-60",
        "computing_efficiency": "0x1.848f1d32f9a62p+32",
        "performance_per_area": "0x1.17ebbeb60cfd0p+38",
    },
}


# -- device-layer aliases ---------------------------------------------------


def test_memristor_alias_matches_spec():
    assert TABLE1.memristor == MEMRISTOR_5NM
    assert TABLE1.memristor.write_time == MEMRISTOR_5NM.write_time
    assert TABLE1.memristor.write_energy == MEMRISTOR_5NM.write_energy
    assert TABLE1.memristor.cell_area == MEMRISTOR_5NM.cell_area
    assert TABLE1.memristor.static_power == MEMRISTOR_5NM.static_power


def test_cmos_alias_matches_spec():
    assert TABLE1.cmos == FINFET_22NM
    assert TABLE1.cmos.gate_delay == FINFET_22NM.gate_delay
    assert TABLE1.cmos.gate_area == FINFET_22NM.gate_area
    assert TABLE1.cmos.gate_power == FINFET_22NM.gate_power
    assert TABLE1.cmos.gate_leakage == FINFET_22NM.gate_leakage
    assert TABLE1.cmos.clock_frequency == FINFET_22NM.clock_frequency


def test_cache_aliases_match_spec():
    assert TABLE1.cache_for("dna") == CACHE_8KB_DNA
    assert TABLE1.cache_for("math") == CACHE_8KB_MATH
    assert TABLE1.cache.size_bytes == CACHE_8KB_DNA.size_bytes
    assert TABLE1.cache.area == CACHE_8KB_DNA.area
    assert TABLE1.cache.static_power == CACHE_8KB_DNA.static_power
    assert TABLE1.cache.miss_penalty_cycles == CACHE_8KB_DNA.miss_penalty_cycles
    assert TABLE1.workloads.dna_hit_ratio == CACHE_8KB_DNA.hit_ratio
    assert TABLE1.workloads.math_hit_ratio == CACHE_8KB_MATH.hit_ratio


# -- compute-unit aliases ---------------------------------------------------


def test_gate_block_aliases_match_spec():
    assert TABLE1.cla_adder.gates == CLA_ADDER_32.gates
    assert TABLE1.cla_adder.depth == CLA_ADDER_32.depth
    assert TABLE1.cmos_comparator.gates == CMOS_COMPARATOR.gates
    assert TABLE1.cmos_comparator.depth == CMOS_COMPARATOR.depth


def test_comparator_cost_default_matches_spec():
    assert ComparatorCost.from_spec(TABLE1) == ComparatorCost()
    cost = ComparatorCost()
    assert TABLE1.comparator.memristors == cost.memristors
    assert TABLE1.comparator.steps == cost.steps
    assert TABLE1.comparator.dynamic_energy == cost.dynamic_energy
    assert TABLE1.comparator.area == cost.area


def test_tc_adder_cost_default_matches_spec():
    assert TCAdderCost.from_spec(TABLE1) == TCAdderCost()
    cost = TCAdderCost()
    assert TABLE1.adder.width == cost.width
    assert TABLE1.adder.operations_per_bit == cost.operations_per_bit


def test_cam_match_cost_default_matches_spec():
    assert CAMMatchCost.from_spec(16, TABLE1) == CAMMatchCost(width=16)


# -- organisation / derived quantities --------------------------------------


def test_spec_organisation_values():
    """The Table 1 organisation quantities, pinned on the spec layer
    (the PR 4 ``repro.core`` constant aliases have been removed)."""
    assert TABLE1.crossbar.dna_clusters == 18750
    assert TABLE1.crossbar.units_per_cluster == 32
    assert TABLE1.dna_crossbar_devices == 18750 * 8192
    assert TABLE1.dna_units == 600_000
    assert TABLE1.workloads.math_additions == 10 ** 6
    assert TABLE1.math_clusters == 31250
    assert TABLE1.math_storage_devices == 31250 * 8192
    assert TABLE1.interconnect.word_bytes == 4


def test_removed_core_aliases_raise():
    """The pre-spec constant aliases are gone for good: stale imports
    must fail loudly, not silently resolve to something else."""
    for module, name in [
        (presets, "DNA_CLUSTERS"),
        (presets, "UNITS_PER_CLUSTER"),
        (presets, "DNA_CROSSBAR_DEVICES"),
        (presets, "DNA_PAPER_IMPLIED_UNITS"),
        (presets, "MATH_ADDITIONS"),
        (presets, "MATH_CLUSTERS"),
        (presets, "MATH_STORAGE_DEVICES"),
        (classification, "WIRE_ENERGY_PER_BIT_M"),
        (classification, "WIRE_DELAY_PER_M"),
        (classification, "COMPUTE_ENERGY"),
        (classification, "COMPUTE_DELAY"),
        (roofline, "WORD_BYTES"),
    ]:
        with pytest.raises(AttributeError):
            getattr(module, name)


def test_periphery_defaults_match_spec():
    default = PeripherySpec()
    assert TABLE1.periphery.gates_per_driver == default.gates_per_driver
    assert TABLE1.periphery.gates_per_sense_amp == default.gates_per_sense_amp
    assert (TABLE1.periphery.decoder_gates_per_line
            == default.decoder_gates_per_line)


# -- spec identity ----------------------------------------------------------


def test_table1_digest_is_stable():
    assert TABLE1.digest == TABLE1_DIGEST
    assert TABLE1.short_digest == TABLE1_DIGEST[:12]


def test_derive_identity_and_round_trip():
    assert TABLE1.derive({}) is TABLE1
    rebuilt = type(TABLE1).from_dict(TABLE1.to_dict())
    assert rebuilt == TABLE1
    assert rebuilt.digest == TABLE1.digest


def test_derive_changes_digest_and_nothing_else():
    derived = TABLE1.derive({"memristor.write_energy": 2e-15})
    assert derived.digest != TABLE1.digest
    assert derived.memristor.write_energy == 2e-15
    assert derived.cmos == TABLE1.cmos
    assert derived.cache == TABLE1.cache
    # TABLE1 itself is untouched (frozen derive, not mutation).
    assert TABLE1.memristor.write_energy == 1e-15


# -- the golden test --------------------------------------------------------


def test_table2_bit_identical_under_default_spec():
    """The whole refactor, summarised: under TABLE1 the reproduced
    Table 2 is *bit-for-bit* what the pre-spec code produced."""
    result = table2(dna_packing="paper")
    assert result.spec is TABLE1
    assert result.spec_digest == TABLE1_DIGEST
    for cell, golden in GOLDEN_TABLE2_HEX.items():
        produced = result.metrics[cell].as_dict()
        for metric, hex_value in golden.items():
            assert produced[metric].hex() == hex_value, (
                f"{cell}/{metric}: {produced[metric].hex()} != {hex_value}"
            )


def test_table2_reports_carry_ledgers():
    result = table2(dna_packing="paper")
    for cell, report in result.reports.items():
        ledger = report.ledger
        assert ledger is not None, cell
        from repro.spec import Quantity

        assert ledger.total(Quantity.ENERGY) == report.energy
        assert all(entry.provenance for entry in ledger)


def test_table2_under_derived_spec_moves():
    """A perturbed spec must actually change the outputs (the aliases
    above guarantee the default path; this guards the threading)."""
    cheap_writes = TABLE1.derive({"memristor.write_energy": 0.5e-15})
    base = table2(dna_packing="paper")
    moved = table2(dna_packing="paper", spec=cheap_writes)
    assert moved.spec_digest != base.spec_digest
    assert (moved.metric("math", "cim", "computing_efficiency")
            > base.metric("math", "cim", "computing_efficiency"))
    # Conventional column doesn't depend on the memristor device.
    assert moved.metric("math", "conventional", "computing_efficiency") == (
        base.metric("math", "conventional", "computing_efficiency"))
