"""Tests for the clustered multicore machine description."""

import pytest

from repro.cmosarch import CLA_ADDER_32, CMOS_COMPARATOR, ClusteredMulticore
from repro.devices import CACHE_8KB_DNA, CACHE_8KB_MATH
from repro.errors import ArchitectureError
from repro.units import MM2


def dna_machine():
    return ClusteredMulticore(
        name="dna",
        clusters=18750,
        units_per_cluster=32,
        unit=CMOS_COMPARATOR,
        cache=CACHE_8KB_DNA,
    )


class TestStructure:
    def test_parallel_units(self):
        assert dna_machine().parallel_units == 600000

    def test_total_gates(self):
        assert dna_machine().total_gates == 600000 * 3

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            ClusteredMulticore("bad", 0, 32, CMOS_COMPARATOR, CACHE_8KB_DNA)
        with pytest.raises(ArchitectureError):
            ClusteredMulticore("bad", 1, 0, CMOS_COMPARATOR, CACHE_8KB_DNA)


class TestPower:
    def test_cache_static_per_unit_convention(self):
        machine = dna_machine()
        assert machine.total_cache_static_power() == pytest.approx(600000 / 64.0)

    def test_cache_static_per_cluster_convention(self):
        machine = ClusteredMulticore(
            "dna", 18750, 32, CMOS_COMPARATOR, CACHE_8KB_DNA,
            cache_static_per_unit=False,
        )
        assert machine.total_cache_static_power() == pytest.approx(18750 / 64.0)

    def test_logic_leakage(self):
        machine = dna_machine()
        assert machine.logic_leakage_power() == pytest.approx(
            600000 * 3 * 42.83e-9
        )


class TestArea:
    def test_cache_dominates_dna_area(self):
        machine = dna_machine()
        caches = 18750 * CACHE_8KB_DNA.area
        assert machine.area() > caches
        assert machine.area() == pytest.approx(caches, rel=0.01)

    def test_dna_area_about_173_mm2(self):
        # 18750 x 0.0092 mm^2 caches + comparator logic.
        assert dna_machine().area() / MM2 == pytest.approx(172.9, rel=0.01)


class TestScaling:
    def test_scaled_to_units_rounds_up(self):
        machine = dna_machine().scaled_to_units(33)
        assert machine.clusters == 2
        assert machine.parallel_units == 64

    def test_scaled_preserves_configuration(self):
        machine = ClusteredMulticore(
            "math", 1, 32, CLA_ADDER_32, CACHE_8KB_MATH
        ).scaled_to_units(10**6)
        assert machine.clusters == 31250
        assert machine.unit is CLA_ADDER_32
        assert machine.cache is CACHE_8KB_MATH

    def test_scaled_rejects_zero(self):
        with pytest.raises(ArchitectureError):
            dna_machine().scaled_to_units(0)

    def test_cache_model_bridge(self):
        model = dna_machine().cache_model()
        assert model.spec is CACHE_8KB_DNA
