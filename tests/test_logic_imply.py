"""Tests for the two IMP implementations of Fig 5."""

import itertools

import pytest

from repro.devices import IdealBipolarMemristor
from repro.errors import LogicError
from repro.logic import CRSImplyCell, ImplyGate, ImplyVoltages, imp_truth


class TestTruthFunction:
    def test_truth_table(self):
        # p IMP q = NOT p OR q
        assert imp_truth(0, 0) == 1
        assert imp_truth(0, 1) == 1
        assert imp_truth(1, 0) == 0
        assert imp_truth(1, 1) == 1

    def test_rejects_non_bits(self):
        with pytest.raises(LogicError):
            imp_truth(2, 0)


class TestImplyVoltages:
    def test_defaults_valid(self):
        v = ImplyVoltages()
        assert 0 < v.v_cond < v.v_set

    def test_v_cond_must_be_below_v_set(self):
        with pytest.raises(LogicError):
            ImplyVoltages(v_cond=1.2, v_set=1.0)

    def test_v_reset_must_be_negative(self):
        with pytest.raises(LogicError):
            ImplyVoltages(v_reset=0.5)

    def test_load_resistance_positive(self):
        with pytest.raises(LogicError):
            ImplyVoltages(r_g=0.0)


class TestFig5aGate:
    """The electrical two-memristor + R_G circuit."""

    @pytest.mark.parametrize("p_bit,q_bit", list(itertools.product((0, 1), repeat=2)))
    def test_truth_table_emerges_electrically(self, p_bit, q_bit):
        gate = ImplyGate()
        p = IdealBipolarMemristor(x=float(p_bit))
        q = IdealBipolarMemristor(x=float(q_bit))
        result = gate.apply(p, q)
        assert result == imp_truth(p_bit, q_bit)

    @pytest.mark.parametrize("p_bit,q_bit", list(itertools.product((0, 1), repeat=2)))
    def test_p_operand_never_disturbed(self, p_bit, q_bit):
        gate = ImplyGate()
        p = IdealBipolarMemristor(x=float(p_bit))
        q = IdealBipolarMemristor(x=float(q_bit))
        gate.apply(p, q)
        assert p.as_bit() == p_bit

    def test_node_voltage_follows_p_state(self):
        gate = ImplyGate()
        p_lrs = IdealBipolarMemristor(x=1.0)
        p_hrs = IdealBipolarMemristor(x=0.0)
        q = IdealBipolarMemristor(x=0.0)
        assert gate.common_node_voltage(p_lrs, q) > gate.common_node_voltage(p_hrs, q)

    def test_rejects_same_device(self):
        gate = ImplyGate()
        device = IdealBipolarMemristor()
        with pytest.raises(LogicError):
            gate.apply(device, device)

    def test_false_resets(self):
        gate = ImplyGate()
        device = IdealBipolarMemristor(x=1.0)
        gate.false(device)
        assert device.as_bit() == 0

    def test_false_idempotent(self):
        gate = ImplyGate()
        device = IdealBipolarMemristor(x=0.0)
        gate.false(device)
        assert device.as_bit() == 0

    def test_bad_vcond_detected(self):
        """A V_COND above the device threshold corrupts P; the gate must
        refuse rather than silently compute garbage."""
        voltages = ImplyVoltages(v_cond=1.05, v_set=1.2)
        gate = ImplyGate(voltages)
        p = IdealBipolarMemristor(x=0.0)
        q = IdealBipolarMemristor(x=0.0)
        with pytest.raises(LogicError):
            gate.apply(p, q)


class TestFig5bCRSCell:
    """The in-cell CRS IMP (2 steps per operation)."""

    @pytest.mark.parametrize("p,q", list(itertools.product((0, 1), repeat=2)))
    def test_truth_table(self, p, q):
        cell = CRSImplyCell()
        assert cell.imply(p, q) == imp_truth(p, q)

    def test_reusable_across_operations(self):
        cell = CRSImplyCell()
        for p, q in itertools.product((0, 1), repeat=2):
            assert cell.imply(p, q) == imp_truth(p, q)
        # And again in reverse order.
        for p, q in reversed(list(itertools.product((0, 1), repeat=2))):
            assert cell.imply(p, q) == imp_truth(p, q)

    def test_initialise_writes_one(self):
        cell = CRSImplyCell()
        cell.cell.write(0)
        cell.initialise()
        assert cell.cell.stored_bit() == 1

    def test_two_steps_per_imp(self):
        assert CRSImplyCell().steps_per_imp == 2

    def test_fig5a_needs_three_steps(self):
        """The paper's Fig 5(a) protocol: set p, set q, conditional set
        — one more step than the CRS variant ('superior performance')."""
        assert CRSImplyCell().steps_per_imp < 3

    def test_v_write_must_exceed_vth2(self):
        with pytest.raises(LogicError):
            CRSImplyCell(v_write=0.5)

    def test_rejects_non_bit_operand(self):
        with pytest.raises(LogicError):
            CRSImplyCell().imply(2, 0)

    def test_electrical_read_of_result(self):
        """The full Fig 5(b) protocol ends with 'Read Z': verify the
        destructive read returns the IMP result."""
        cell = CRSImplyCell()
        cell.imply(1, 0)
        assert cell.cell.read() == 0
        cell.imply(0, 0)
        assert cell.cell.read() == 1
