"""Tests for the Table 1 technology profiles."""

import dataclasses

import pytest

from repro.devices import (
    CACHE_8KB_DNA,
    CACHE_8KB_MATH,
    CacheSpec,
    CMOSTechnology,
    FINFET_22NM,
    MEMRISTOR_5NM,
    MemristorTechnology,
)
from repro.errors import DeviceError
from repro.units import FJ, NW, PS, UM2


class TestMemristor5nm:
    """Each assertion quotes one Table 1 line."""

    def test_write_time_200ps(self):
        assert MEMRISTOR_5NM.write_time == pytest.approx(200 * PS)

    def test_write_energy_1fj(self):
        assert MEMRISTOR_5NM.write_energy == pytest.approx(1 * FJ)

    def test_cell_area(self):
        assert MEMRISTOR_5NM.cell_area == pytest.approx(1e-4 * UM2)

    def test_zero_static_power(self):
        assert MEMRISTOR_5NM.static_power == 0.0

    def test_feature_size_5nm(self):
        assert MEMRISTOR_5NM.feature_size == pytest.approx(5e-9)

    def test_off_on_ratio(self):
        assert MEMRISTOR_5NM.off_on_ratio == pytest.approx(1000.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MEMRISTOR_5NM.write_time = 1.0

    def test_validation(self):
        with pytest.raises(DeviceError):
            MemristorTechnology(
                name="bad", feature_size=-1, write_time=1e-10,
                write_energy=1e-15, cell_area=1e-16,
            )
        with pytest.raises(DeviceError):
            MemristorTechnology(
                name="bad", feature_size=5e-9, write_time=1e-10,
                write_energy=1e-15, cell_area=1e-16, r_on=1e6, r_off=1e3,
            )


class TestFinFET22nm:
    def test_gate_delay_14ps(self):
        assert FINFET_22NM.gate_delay == pytest.approx(14 * PS)

    def test_gate_power_175nw(self):
        assert FINFET_22NM.gate_power == pytest.approx(175 * NW)

    def test_gate_leakage(self):
        assert FINFET_22NM.gate_leakage == pytest.approx(42.83 * NW)

    def test_gate_area(self):
        assert FINFET_22NM.gate_area == pytest.approx(0.248 * UM2)

    def test_cycle_time_1ns(self):
        assert FINFET_22NM.cycle_time == pytest.approx(1e-9)

    def test_gate_dynamic_energy(self):
        # 175 nW x 14 ps = 2.45 aJ per gate evaluation.  Note: this is
        # attojoules — Table 1's per-gate power is tiny, which is why
        # the conventional energy bill is cache-dominated.
        assert FINFET_22NM.gate_dynamic_energy() == pytest.approx(
            2.45e-18, rel=1e-9, abs=0
        )

    def test_leakage_energy_over_idle(self):
        idle = FINFET_22NM.cycle_time - FINFET_22NM.gate_delay
        expected = 42.83 * NW * idle
        assert FINFET_22NM.gate_leakage_energy(idle) == pytest.approx(
            expected, rel=1e-9, abs=0
        )

    def test_leakage_rejects_negative_idle(self):
        with pytest.raises(DeviceError):
            FINFET_22NM.gate_leakage_energy(-1.0)

    def test_validation(self):
        with pytest.raises(DeviceError):
            CMOSTechnology(
                name="bad", gate_delay=0, gate_area=1e-13,
                gate_power=1e-7, gate_leakage=1e-8, clock_frequency=1e9,
            )


class TestCacheSpecs:
    def test_dna_hit_ratio(self):
        assert CACHE_8KB_DNA.hit_ratio == 0.5

    def test_math_hit_ratio(self):
        assert CACHE_8KB_MATH.hit_ratio == 0.98

    def test_shared_parameters(self):
        # "the same as for healthcare except with 98% hit rate"
        for field in ("size_bytes", "area", "miss_penalty_cycles",
                      "static_power", "hit_cycles", "write_cycles"):
            assert getattr(CACHE_8KB_DNA, field) == getattr(CACHE_8KB_MATH, field)

    def test_size_8kb(self):
        assert CACHE_8KB_DNA.size_bytes == 8192

    def test_static_power_one_64th_watt(self):
        assert CACHE_8KB_DNA.static_power == pytest.approx(1.0 / 64.0)

    def test_miss_penalty_165(self):
        assert CACHE_8KB_DNA.miss_penalty_cycles == 165

    def test_average_read_cycles_dna(self):
        # 0.5*1 + 0.5*165 = 83 cycles.
        assert CACHE_8KB_DNA.average_read_cycles() == pytest.approx(83.0)

    def test_average_read_cycles_math(self):
        # 0.98*1 + 0.02*165 = 4.28 cycles.
        assert CACHE_8KB_MATH.average_read_cycles() == pytest.approx(4.28)

    def test_with_hit_ratio(self):
        spec = CACHE_8KB_DNA.with_hit_ratio(1.0)
        assert spec.hit_ratio == 1.0
        assert spec.average_read_cycles() == pytest.approx(1.0)
        assert spec.area == CACHE_8KB_DNA.area

    def test_validation(self):
        with pytest.raises(DeviceError):
            CacheSpec(hit_ratio=1.5)
        with pytest.raises(DeviceError):
            CacheSpec(size_bytes=0)
        with pytest.raises(DeviceError):
            CacheSpec(miss_penalty_cycles=0)
        with pytest.raises(DeviceError):
            CacheSpec(static_power=-1.0)
