"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestConstants:
    def test_prefix_values(self):
        assert units.PICO == 1e-12
        assert units.FEMTO == 1e-15
        assert units.GIGA == 1e9

    def test_time_aliases(self):
        assert units.PS == units.PICO
        assert units.NS == units.NANO

    def test_area_constants(self):
        # 1 um^2 in m^2, 1 mm^2 in m^2
        assert units.UM2 == 1e-12
        assert units.MM2 == 1e-6

    def test_kib_is_binary(self):
        assert units.KiB == 1024

    def test_gb_is_decimal(self):
        assert units.GB == 10**9


class TestSiFormat:
    def test_picoseconds(self):
        assert units.si_format(200e-12, "s") == "200 ps"

    def test_femtojoules(self):
        assert units.si_format(45e-15, "J") == "45 fJ"

    def test_unity(self):
        assert units.si_format(3.0, "V") == "3 V"

    def test_kilo(self):
        assert units.si_format(10e3, "ohm") == "10 kohm"

    def test_zero(self):
        assert units.si_format(0.0, "J") == "0 J"

    def test_negative_value(self):
        assert units.si_format(-1.4, "V") == "-1.4 V"

    def test_no_unit(self):
        assert units.si_format(1e6) == "1 M"

    def test_non_finite(self):
        assert "inf" in units.si_format(math.inf, "J")

    def test_below_smallest_prefix(self):
        out = units.si_format(1e-27, "s")
        assert "y" in out


class TestConversions:
    def test_from_unit(self):
        assert units.from_unit(200, units.PS) == pytest.approx(2e-10)

    def test_to_unit(self):
        assert units.to_unit(2e-10, units.PS) == pytest.approx(200.0)

    def test_round_trip(self):
        value = 42.7
        assert units.to_unit(units.from_unit(value, units.FJ), units.FJ) == pytest.approx(value)


class TestRatioDb:
    def test_10x_is_10db(self):
        assert units.ratio_db(10.0) == pytest.approx(10.0)

    def test_unity_is_0db(self):
        assert units.ratio_db(1.0) == pytest.approx(0.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.ratio_db(0.0)
        with pytest.raises(ValueError):
            units.ratio_db(-3.0)
