"""Tests for multistage readout and the CMOS periphery model."""

import pytest

from repro.core import (
    PeripheryModel,
    PeripherySpec,
    cim_dna_machine,
    conventional_dna_machine,
    corrected_performance_per_area,
    dna_paper_workload,
    metrics_from_report,
)
from repro.crossbar import (
    CrossbarArray,
    multistage_margin_vs_size,
    multistage_read_margin,
    multistage_sense_current,
    read_cost_factor,
    read_margin,
    worst_case_array,
)
from repro.errors import ArchitectureError, CrossbarError


class TestMultistageRead:
    def test_exact_cancellation_ideal_wires(self):
        """With ideal wires the differential read recovers the pure
        cell conductance: margin = R_off/R_on regardless of size."""
        for n in (4, 8, 16):
            report = multistage_read_margin(n, n)
            assert report.margin == pytest.approx(1000.0, rel=1e-6), n

    def test_recovers_where_plain_read_fails(self):
        n = 16
        plain = read_margin(n, n).margin
        multi = multistage_read_margin(n, n).margin
        assert plain < 2.0 < multi

    def test_margin_vs_size_constant(self):
        reports = multistage_margin_vs_size((2, 8, 16))
        margins = [r.margin for r in reports]
        assert max(margins) / min(margins) < 1.001

    def test_signal_is_cell_current(self):
        array = worst_case_array(8, 8, None, target_bit=1)
        signal = multistage_sense_current(array, 0, 0, v_read=1.0)
        cell = array.cell(0, 0)
        assert signal == pytest.approx(1.0 / cell.resistance(), rel=1e-9)

    def test_with_wire_resistance_still_readable(self):
        report = multistage_read_margin(8, 8, wire_resistance=5.0)
        assert report.margin > 100

    def test_address_validation(self):
        array = CrossbarArray(4, 4)
        with pytest.raises(CrossbarError):
            multistage_sense_current(array, 9, 0)

    def test_cost_factor(self):
        cost = read_cost_factor()
        assert cost["latency_multiplier"] == 2.0
        assert cost["drives_all_lines"]

    def test_scheme_label(self):
        assert multistage_read_margin(4, 4).scheme == "multistage"


class TestPeripheryModel:
    def test_gates_per_tile_scales_with_lines(self):
        model = PeripheryModel()
        small = model.gates_per_tile(128, 128)
        large = model.gates_per_tile(512, 512)
        assert large > small

    def test_tile_count_rounds_up(self):
        model = PeripheryModel()
        report = model.evaluate(512 * 512 + 1, tile_rows=512, tile_cols=512)
        assert report.tiles == 2

    def test_area_and_power_positive(self):
        report = PeripheryModel().evaluate(10**6)
        assert report.area > 0
        assert report.static_power > 0
        assert report.gates > 0

    def test_spec_validation(self):
        with pytest.raises(ArchitectureError):
            PeripherySpec(gates_per_driver=0)

    def test_evaluate_validation(self):
        with pytest.raises(ArchitectureError):
            PeripheryModel().evaluate(0)
        with pytest.raises(ArchitectureError):
            PeripheryModel().gates_per_tile(0, 4)


class TestCorrectedPerformancePerArea:
    @pytest.fixture(scope="class")
    def corrected(self):
        return corrected_performance_per_area(
            cim_dna_machine("paper"), dna_paper_workload()
        )

    def test_correction_reduces_metric(self, corrected):
        assert corrected["corrected"] < corrected["raw"]
        assert corrected["area_factor"] > 1.0

    def test_cim_still_wins_after_correction(self, corrected):
        """The honesty check the paper skipped: even charging the full
        CMOS periphery, CIM's perf/area beats the conventional machine
        by more than an order of magnitude."""
        conv = metrics_from_report(
            conventional_dna_machine().evaluate(dna_paper_workload())
        )
        assert corrected["corrected"] > 10 * conv.performance_per_area

    def test_smaller_tiles_cost_more_periphery(self):
        machine = cim_dna_machine("paper")
        workload = dna_paper_workload()
        small = corrected_performance_per_area(machine, workload,
                                               tile_rows=128, tile_cols=128)
        large = corrected_performance_per_area(machine, workload,
                                               tile_rows=1024, tile_cols=1024)
        assert small["area_factor"] > large["area_factor"]


class TestSimExtensions:
    def test_reduce_add(self):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=8, width=8, lanes=4)
        values = [1, 2, 3, 4, 5, 6, 7, 200]
        machine.store_many(values)
        result = machine.reduce_add()
        assert result.values == [sum(values) & 255]

    def test_reduce_add_subset(self):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=4, width=4)
        machine.store_many([1, 2, 3, 4])
        assert machine.reduce_add([0, 2]).values == [4]

    def test_reduce_add_single_word(self):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=2, width=4)
        machine.store_many([9, 1])
        assert machine.reduce_add([0]).values == [9]

    def test_reduce_add_empty_rejected(self):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=2, width=4)
        with pytest.raises(ArchitectureError):
            machine.reduce_add([])

    @pytest.mark.parametrize("op,fn", [
        ("AND", lambda a, b: a & b),
        ("OR", lambda a, b: a | b),
        ("XOR", lambda a, b: a ^ b),
        ("NAND", lambda a, b: ~(a & b) & 15),
        ("NOR", lambda a, b: ~(a | b) & 15),
        ("XNOR", lambda a, b: ~(a ^ b) & 15),
    ])
    def test_bitwise_ops(self, op, fn):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=2, width=4)
        machine.store_many([0b1010, 0b0110])
        assert machine.bitwise(op, 0, 1) == fn(0b1010, 0b0110)

    def test_bitwise_rejects_unary_gate(self):
        from repro.sim import FunctionalCIM

        machine = FunctionalCIM(words=2, width=4)
        machine.store_many([1, 2])
        with pytest.raises(ArchitectureError):
            machine.bitwise("NOT", 0, 1)
