"""Stateful IMPLY logic — Figure 5 and Section IV.C.

Run:
    python examples/imply_logic.py

Demonstrates both IMP circuit implementations, the gate library with
its step/device costs, compiling an arbitrary Boolean function to an
IMP sequence, and the Table 1 nucleotide comparator running on the
electrical machine.
"""

import itertools

from repro.analysis import format_table
from repro.devices import IdealBipolarMemristor
from repro.logic import (
    GATES,
    CRSImplyCell,
    ImplyGate,
    ImplyMachine,
    build_gate,
    nucleotide_comparator_program,
    synthesise,
    verify_program,
)


def main() -> None:
    print("1) material implication, both Fig 5 circuits")
    gate = ImplyGate()
    crs = CRSImplyCell()
    rows = []
    for p, q in itertools.product((0, 1), repeat=2):
        device_p = IdealBipolarMemristor(x=float(p))
        device_q = IdealBipolarMemristor(x=float(q))
        rows.append([str(p), str(q),
                     str(gate.apply(device_p, device_q)),
                     str(crs.imply(p, q))])
    print(format_table(["p", "q", "Fig 5(a) 2R+RG", "Fig 5(b) CRS"], rows))

    print("\n2) gate library costs (Table 1's decomposition source)")
    rows = []
    for name in sorted(GATES):
        prog = build_gate(name)
        rows.append([name, str(prog.compute_step_count),
                     str(prog.step_count), str(prog.device_count)])
    print(format_table(["gate", "compute steps", "with loads", "devices"], rows))

    print("\n3) compiling an arbitrary function: majority-of-3")
    majority = lambda a, b, c: 1 if a + b + c >= 2 else 0
    program = synthesise(majority, 3, name="MAJ3")
    verify_program(program, majority)
    print(f"   synthesised MAJ3: {program.compute_step_count} steps on "
          f"{program.device_count} memristors — verified on all 8 inputs")

    print("\n4) the Table 1 nucleotide comparator, electrically")
    comparator = nucleotide_comparator_program()
    machine = ImplyMachine()
    report = machine.run_and_check(
        comparator, {"a1": 1, "a0": 0, "b1": 1, "b0": 0}
    )
    print(f"   compare G vs G: match={report.outputs['match']}, "
          f"{report.steps} pulses, {report.energy * 1e15:.0f} fJ, "
          f"{report.latency * 1e9:.2f} ns")
    report = machine.run_and_check(
        comparator, {"a1": 1, "a0": 0, "b1": 0, "b0": 1}
    )
    print(f"   compare G vs C: match={report.outputs['match']}")


if __name__ == "__main__":
    main()
