"""The CRS cell and crossbar memories — Figures 3 and 4.

Run:
    python examples/crs_memory.py

Walks through the device layer: the CRS butterfly I-V curve and its
four thresholds, the destructive read + write-back protocol, the
sneak-path problem in bare 1R crossbars, and how CRS junctions (and
1S1R selectors, and V/3 biasing) restore read margins.
"""

from repro.analysis import format_table
from repro.crossbar import (
    ALL_SCHEMES,
    CRSJunction,
    CrossbarMemory,
    OneSelectorOneR,
    read_margin,
)
from repro.devices import ComplementaryResistiveSwitch, triangular_sweep
from repro.units import si_format


def main() -> None:
    print("1) CRS cell (Fig 4)")
    cell = ComplementaryResistiveSwitch()
    vth = cell.thresholds()
    print(f"   thresholds: Vth1={vth[0]:.2f} Vth2={vth[1]:.2f} "
          f"Vth3={vth[2]:.2f} Vth4={vth[3]:.2f} V; "
          f"read window {cell.read_window()} V")

    trace = cell.sweep_iv(triangular_sweep(1.6, 40))
    peak = max(abs(i) for _, i, _ in trace)
    print(f"   I-V sweep: {len(trace)} points, peak |I| = {peak:.2e} A "
          f"(the ON-window spike)")

    cell.write(0)
    bit = cell.read(write_back=True)
    print(f"   destructive read of '0': returned {bit}, state healed to "
          f"{cell.state.value} by write-back")

    print("\n2) word-level CRS crossbar memory")
    memory = CrossbarMemory(words=8, width=8, cell_kind="CRS")
    for address, value in enumerate((0x00, 0x55, 0xAA, 0xFF)):
        memory.write_int(address, value)
    values = [memory.read_int(a) for a in range(4)]
    print(f"   stored/readback: {[hex(v) for v in values]}")
    print(f"   stats: {memory.stats.reads} reads, {memory.stats.writes} writes, "
          f"{memory.stats.write_backs} write-backs, "
          f"E={si_format(memory.stats.energy, 'J')}")

    print("\n3) sneak paths (Fig 3): worst-case read margin at 8x8")
    rows = []
    for label, factory in [
        ("1R", None),
        ("1S1R", lambda r, c: OneSelectorOneR()),
        ("CRS", lambda r, c: CRSJunction()),
    ]:
        for scheme in ALL_SCHEMES:
            margin = read_margin(8, 8, factory, scheme).margin
            rows.append([label, scheme.name, f"{margin:.2f}",
                         "yes" if margin >= 2 else "NO"])
    print(format_table(["junction", "bias", "margin", "readable"], rows))


if __name__ == "__main__":
    main()
