"""Quickstart: reproduce the paper's headline result (Table 2).

Run:
    python examples/quickstart.py

Evaluates the two paper workloads (DNA sequencing, 10^6 parallel
additions) on both machine models built from the Table 1 assumptions,
prints the reproduced Table 2 next to the published values, and shows
the CIM improvement factors.

Everything goes through ``repro.api`` — the stable keyword-only facade
(its surface is snapshot-tested, so this example won't rot).
"""

from repro import api
from repro.analysis import render_machine_reports, render_table2


def main() -> None:
    result = api.table2(dna_packing="paper")

    print("Machine evaluations")
    print("-------------------")
    print(render_machine_reports(result))
    print()
    print(render_table2(result))
    print()
    print("Reading guide:")
    print(" * math column: quantitatively recovered (conv EDP/efficiency,")
    print("   CIM EDP/efficiency match the paper to <0.5%).")
    print(" * DNA column: execution time matches the paper-implied 0.083 s;")
    print("   the paper's DNA energy absolutes contain a unit double-count")
    print("   (see EXPERIMENTS.md), so compare the improvement *ratios*.")


if __name__ == "__main__":
    main()
