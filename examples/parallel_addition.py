"""Parallel additions in memory — the paper's mathematics use case.

Run:
    python examples/parallel_addition.py

Three views of the same workload:

1. *functional*: a vector addition executed bit-by-bit by IMPLY ripple
   adders on the electrical machine, verified against numpy;
2. *unit cost*: the CRS TC-adder constants of Table 1 (N+2 cells,
   4N+5 steps);
3. *architectural*: the full 10^6-addition Table 2 evaluation on both
   machines.
"""

import numpy as np

from repro.apps.math import CIMVectorAdder
from repro.core import (
    cim_math_machine,
    conventional_math_machine,
    evaluate_pair,
    math_paper_workload,
)
from repro.sim import FunctionalCIM
from repro.units import si_format


def main() -> None:
    rng = np.random.default_rng(5)
    x = rng.integers(0, 256, size=16).tolist()
    y = rng.integers(0, 256, size=16).tolist()

    print("1) functional in-memory addition (8-bit IMPLY ripple adders)")
    adder = CIMVectorAdder(width=8)
    report = adder.add_vectors(x, y)
    print(f"   {report.elements} element pairs added, all verified vs numpy")
    print(f"   IMPLY program: {report.imply_steps_per_add} pulses per add")
    print(f"   TC-adder (paper unit): {report.tc_adder_steps_per_add} steps, "
          f"{si_format(report.tc_adder_latency, 's')}, "
          f"{si_format(report.tc_adder_energy, 'J')} per add")

    print("\n2) the same on the traced functional CIM machine (4 lanes)")
    machine = FunctionalCIM(words=16, width=8, lanes=4)
    machine.add_arrays(x[:8], y[:8])
    print("   " + machine.trace.summary().replace("\n", "\n   "))

    print("\n3) Table 2 mathematics column (10^6 32-bit additions)")
    conv, cim, factors = evaluate_pair(
        conventional_math_machine(), cim_math_machine(), math_paper_workload()
    )
    for rep in (conv, cim):
        print(f"   {rep.machine:18s} T={si_format(rep.time, 's'):>9s} "
              f"E={si_format(rep.energy, 'J'):>9s} "
              f"A={rep.area * 1e6:.4g} mm^2")
    print(f"   CIM improvement: EDP x{factors.energy_delay:.4g} "
          f"(paper: 162.5x), ops/J x{factors.computing_efficiency:.4g} "
          f"(paper: 599x)")


if __name__ == "__main__":
    main()
