"""Compiling logic netlists to in-memory IMPLY programs.

Run:
    python examples/logic_compiler.py

Builds a full-adder netlist in the gate-level input language, lowers it
to a {FALSE, IMP} pulse program, shrinks its memristor footprint with
the liveness register allocator, and runs the result on the electrical
machine — the seed of the "compiler tools" Section III.C says the CIM
paradigm shift requires.
"""

from itertools import product

from repro.compiler import (
    LogicNetwork,
    allocation_report,
    compilation_report,
    compile_network,
    random_network,
    reuse_registers,
)
from repro.logic import ImplyMachine
from repro.units import si_format


def main() -> None:
    print("1) full adder as a netlist")
    net = LogicNetwork("full-adder")
    a, b, c = net.input("a"), net.input("b"), net.input("cin")
    x = net.gate("XOR", a, b)
    net.gate("XOR", x, c, name="sum")
    g = net.gate("AND", a, b)
    p = net.gate("AND", x, c)
    net.gate("OR", g, p, name="cout")
    net.output("sum")
    net.output("cout")
    print(f"   {net.gate_count} gates, depth {net.depth()}")

    program = compile_network(net)
    report = compilation_report(net)
    print(f"\n2) lowered to IMPLY: {program.step_count} pulses "
          f"({report.pulses_per_gate:.1f} per gate) on "
          f"{program.device_count} memristors")

    compact = reuse_registers(program)
    alloc = allocation_report(program)
    print(f"3) register reuse: {alloc.registers_before} -> "
          f"{alloc.registers_after} memristors "
          f"({100 * alloc.reduction:.0f}% reclaimed), pulses unchanged")

    print("\n4) verify on the electrical machine (all 8 input patterns):")
    machine_energy = 0.0
    for bits in product((0, 1), repeat=3):
        machine = ImplyMachine()
        inputs = dict(zip(["a", "b", "cin"], bits))
        result = machine.run_and_check(compact, inputs)
        machine_energy += result.energy
        total = sum(bits)
        assert result.outputs["sum"] == total & 1
        assert result.outputs["cout"] == total >> 1
    print(f"   all correct; total energy for 8 runs: "
          f"{si_format(machine_energy, 'J')}")

    print("\n5) the allocator on random logic:")
    for seed in range(4):
        net = random_network(inputs=5, gates=30, outputs=3, seed=seed)
        alloc = allocation_report(compile_network(net))
        print(f"   seed {seed}: {alloc.registers_before:3d} -> "
              f"{alloc.registers_after:3d} registers "
              f"({100 * alloc.reduction:.0f}% saved)")


if __name__ == "__main__":
    main()
