"""Serve kernels with the live telemetry endpoint and read it back.

Run:
    python examples/serve_with_dashboard.py

Walks the request-scoped telemetry loop end to end: starts a
`KernelServer` (telemetry on by default) next to a
`TelemetryHTTPServer`, pushes a burst of adder requests through the
batching window, then scrapes the endpoint like a dashboard would —
`/healthz`, `/metrics` (Prometheus text and JSON), `/flight?last=N` —
and prints the per-kernel latency quantiles plus the last few flight
records.  The console equivalent of the scrape loop:

    repro top http://127.0.0.1:<port>

against a server started with:

    python -m repro serve --metrics-port <port>
"""

import asyncio

from repro.obs.flight import get_flight_recorder
from repro.obs.httpexport import TelemetryHTTPServer, fetch_json, render_top
from repro.serve import ServeRequest
from repro.serve.server import KernelServer

REQUESTS = 256
WIDTH = 16


async def main() -> None:
    recorder = get_flight_recorder()
    recorder.clear()

    async with KernelServer(max_batch_size=64, max_wait_us=2000.0) as server:
        http = TelemetryHTTPServer(health=server.stats)
        await http.start()
        try:
            requests = [
                ServeRequest(
                    id=f"req-{i:03d}", kernel="adder", width=WIDTH,
                    operands={"a": (i,), "b": (i * 3 + 1,)},
                )
                for i in range(REQUESTS)
            ]
            results = await server.submit_many(requests)
            ok = sum(1 for r in results if r.outputs)
            print(f"served {ok}/{REQUESTS} adder requests "
                  f"through {http.url}\n")

            # What `repro top` does each poll: three JSON fetches, one
            # rendered screen.  (fetch_json is blocking stdlib urllib,
            # fine for an example; `repro top` runs it in a plain
            # process.)
            loop = asyncio.get_running_loop()
            base = http.url
            health = await loop.run_in_executor(
                None, fetch_json, f"{base}/healthz")
            metrics = await loop.run_in_executor(
                None, fetch_json, f"{base}/metrics?format=json")
            flights = await loop.run_in_executor(
                None, fetch_json, f"{base}/flight?last=5")
            print(render_top(metrics, health, flights["records"]))

            # The same latency summary, read in-process: the registry's
            # P2 streaming quantiles per kernel.
            summary = metrics["serve_request_latency_seconds"]
            for child in summary["children"]:
                if child["labels"].get("kernel") == "adder":
                    quantiles = {
                        q: f"{v * 1e6:.0f}us"
                        for q, v in child["quantiles"].items()
                    }
                    print(f"\nadder wall latency quantiles: {quantiles}")

            # And the raw flight records behind /flight: stage-by-stage
            # timelines for the most recent requests.
            print("\nlast 3 flight records:")
            for record in recorder.last(3):
                print(" ", record.describe())
        finally:
            await http.stop()


if __name__ == "__main__":
    asyncio.run(main())
