"""Profile the Table 2 reproduction with the observability layer.

Run:
    python examples/profiling_table2.py

Walks the `repro.obs` API end to end: enables the span tracer, runs the
full Table 2 pipeline under a root span, prints the span tree (wall
time plus simulated energy/latency attributed per stage), diffs the
metrics registry across the run, and exports the telemetry as JSON
lines and Prometheus text.  Equivalent one-liner:

    python -m repro table2 --profile
"""

import os
import tempfile

from repro import api
from repro.analysis import render_table2
from repro.obs import get_registry, get_tracer
from repro.obs.bench import metric_deltas
from repro.obs.export import (
    console_summary,
    export_prometheus,
    export_spans_jsonl,
)


def main() -> None:
    registry = get_registry()
    tracer = get_tracer()

    before = registry.snapshot()
    tracer.enable()
    try:
        with tracer.span("profiling_table2"):
            result = api.table2(dna_packing="paper")

        print(render_table2(result))

        print()
        print("Span tree (wall time; simulated energy/latency per stage)")
        print("---------------------------------------------------------")
        print(tracer.render())

        print()
        print("Metric movement during the run")
        print("------------------------------")
        deltas = metric_deltas(before, registry.snapshot())
        for name in sorted(deltas):
            print(f"  {name:45s} +{deltas[name]:g}")

        print()
        print(console_summary(registry))

        # Machine-readable exports: spans as JSON lines, metrics as
        # Prometheus text.  Both also back `python -m repro obs`.
        out_dir = tempfile.mkdtemp(prefix="repro-obs-")
        jsonl = os.path.join(out_dir, "table2_spans.jsonl")
        prom = os.path.join(out_dir, "table2_metrics.prom")
        export_spans_jsonl(tracer, jsonl)
        export_prometheus(registry, prom)
        print()
        print(f"Exported spans  -> {jsonl}")
        print(f"Exported metrics -> {prom}")
    finally:
        tracer.disable()
        tracer.reset()


if __name__ == "__main__":
    main()
