"""Memory test and lifetime — the paper's open reliability questions.

Run:
    python examples/memory_test.py

1. Injects stuck-at and transition faults into a crossbar memory and
   locates every one with the March C- algorithm (and shows the cheaper
   MATS+ missing transition faults).
2. Projects compute-cell lifetime for the two Table 2 workloads from
   the Section IV.A endurance figures — exposing that always-on
   stateful arithmetic is endurance-limited to hours, a constraint the
   paper's vision leaves open.
"""

from repro.analysis import format_table
from repro.core import (
    cim_dna_machine,
    cim_math_machine,
    dna_paper_workload,
    math_paper_workload,
)
from repro.crossbar import CrossbarMemory
from repro.reliability import (
    ENDURANCE_ECM,
    ENDURANCE_VCM,
    MATS_PLUS,
    FaultInjector,
    MarchRunner,
    project_lifetime,
)
from repro.units import si_format


def main() -> None:
    print("1) fault injection + March C-")
    memory = CrossbarMemory(16, 16)
    injector = FaultInjector(memory)
    faults = injector.inject_random(8, seed=4)
    print(f"   injected: " + ", ".join(
        f"({f.row},{f.col})={f.kind.name}" for f in faults))

    result = MarchRunner(memory).run()
    located = sorted(result.faulty_cells())
    print(f"   March C- ({result.operations} ops = 10N): located {located}")
    print(f"   all faults found: {set(located) == set(injector.fault_map())}")

    memory2 = CrossbarMemory(16, 16)
    injector2 = FaultInjector(memory2)
    for fault in faults:
        injector2.inject(fault.row, fault.col, fault.kind)
    mats = MarchRunner(memory2).run(MATS_PLUS, "MATS+")
    print(f"   MATS+ (5N) located only {len(mats.faulty_cells())}/"
          f"{len(faults)} — transition faults escape the shorter test")

    print("\n2) endurance-limited lifetime (continuous operation)")
    rows = []
    for machine, workload in [
        (cim_math_machine(), math_paper_workload()),
        (cim_dna_machine("paper"), dna_paper_workload()),
    ]:
        for endurance, label in [(ENDURANCE_VCM, "VCM 1e12"),
                                 (ENDURANCE_ECM, "ECM 1e10")]:
            report = project_lifetime(machine, workload, endurance)
            rows.append([
                machine.name, label,
                f"{report.writes_per_cell_per_second:.3g}",
                si_format(report.lifetime_seconds, "s"),
                f"{report.lifetime_years:.4f}",
            ])
    print(format_table(
        ["machine", "endurance", "writes/cell/s", "lifetime", "years"],
        rows,
    ))
    print("   -> stateful arithmetic at 100% duty exhausts VCM endurance "
          "within a day;\n      duty cycling or wear-aware mapping is a "
          "first-order CIM design constraint.")


if __name__ == "__main__":
    main()
