"""DNA read mapping end to end — the paper's healthcare use case.

Run:
    python examples/dna_sequencing.py

Pipeline (Section III.B.1): build a synthetic reference genome, sample
error-bearing short reads at a given coverage, build the *sorted index*
the paper describes, map every read, and then do what the paper could
only assume:

1. measure the actual cache hit ratio of the index's probe stream by
   replaying it through a functional 8 kB L1 (the paper assumes 50%);
2. convert the measured operation counts into a workload and evaluate
   it on both architecture models, showing the CIM advantage survives
   measured (not just assumed) parameters.
"""

from repro.apps.dna import (
    PileupCaller,
    ReadMapper,
    SortedKmerIndex,
    generate_reads,
    measure_cache_hit_ratio,
    measured_workload,
    plant_variants,
    random_genome,
    score_calls,
)
from repro.core import (
    cim_dna_machine,
    conventional_dna_machine,
    improvement,
    metrics_from_report,
)
from repro.units import si_format

GENOME_BASES = 50_000
COVERAGE = 3
READ_LENGTH = 80
ERROR_RATE = 0.01


def main() -> None:
    print(f"reference genome: {GENOME_BASES} bases (synthetic)")
    genome = random_genome(GENOME_BASES, seed=7)

    reads = generate_reads(genome, coverage=COVERAGE, read_length=READ_LENGTH,
                           error_rate=ERROR_RATE, seed=8)
    print(f"short reads: {len(reads)} x {READ_LENGTH} bases at "
          f"{COVERAGE}x coverage, {100 * ERROR_RATE:.1f}% substitution errors")

    index = SortedKmerIndex(genome, k=16)
    print(f"sorted index: {len(index)} 16-mers")

    mapper = ReadMapper(index, max_mismatches=3)
    stats = mapper.map_all(reads)
    print(f"mapping accuracy: {100 * stats.accuracy:.1f}% "
          f"({stats.reads_correct}/{stats.reads_mapped})")
    print(f"character comparisons: {stats.char_comparisons}, "
          f"index comparisons: {stats.index_comparisons}")

    hit_ratio = measure_cache_hit_ratio(index)
    print(f"\nmeasured 8 kB L1 hit ratio of index probes: {hit_ratio:.2f}  "
          f"(Table 1 assumes 0.50 — the sorted index destroys locality)")

    workload = measured_workload(stats, hit_ratio)
    conv = conventional_dna_machine().evaluate(workload)
    cim = cim_dna_machine("paper").evaluate(workload)
    factors = improvement(metrics_from_report(conv), metrics_from_report(cim))

    print("\narchitecture projection of the measured workload:")
    for report in (conv, cim):
        print(f"  {report.machine:18s} T={si_format(report.time, 's'):>10s}  "
              f"E={si_format(report.energy, 'J'):>10s}")
    print(f"CIM improvement: EDP x{factors.energy_delay:.3g}, "
          f"ops/J x{factors.computing_efficiency:.3g}, "
          f"perf/area x{factors.performance_per_area:.3g}")

    print("\nclinical endpoint: variant calling (paper ref [51])")
    donor, truth = plant_variants(genome, count=15, seed=9)
    donor_reads = generate_reads(donor, coverage=12, read_length=READ_LENGTH,
                                 error_rate=ERROR_RATE, seed=10)
    donor_mapper = ReadMapper(SortedKmerIndex(genome, k=16), max_mismatches=4)
    donor_stats = donor_mapper.map_all(donor_reads)
    caller = PileupCaller(genome)
    caller.add_mapped(donor_stats, donor_reads)
    score = score_calls(caller.call(), truth)
    print(f"planted {len(truth)} SNVs at 12x coverage: "
          f"recall {score.recall:.2f}, precision {score.precision:.2f}")


if __name__ == "__main__":
    main()
