"""In-memory database search — the §II.B "in memory computing/database"
class, executed on CIM primitives.

Run:
    python examples/database_search.py

Builds a CAM-indexed column-store table inside crossbar memories,
answers equality selects with one associative search, compares against
the conventional row-scan cost model, and finishes with the junction
tiling study: which cross-point technology a database machine should be
built from.
"""

import numpy as np

from repro.analysis import format_table
from repro.apps.db import CIMTable, Column, select_speedup
from repro.core import TilingStudy
from repro.units import si_format

ROWS = 56


def main() -> None:
    rng = np.random.default_rng(17)
    table = CIMTable(
        [Column("customer", 8), Column("amount", 8), Column("region", 4)],
        capacity=64,
    )
    for _ in range(ROWS):
        table.insert(
            customer=int(rng.integers(0, 24)),
            amount=int(rng.integers(0, 256)),
            region=int(rng.integers(0, 8)),
        )
    print(f"table: {len(table)} rows x {len(table.columns)} columns "
          f"(key: {table.key_column.name})")

    print("\n1) equality selects (one CAM search each)")
    for key in (3, 7, 19):
        matches = table.select_equal(key)
        amounts = [table.fetch(row, "amount") for row in matches]
        print(f"   customer={key}: rows {matches}, amounts {amounts}")

    print("\n2) associative search vs conventional scan")
    cam, scan, speedup = select_speedup(table, 7)
    print(f"   CAM: {si_format(cam.latency, 's')}, "
          f"{si_format(cam.energy, 'J')}  |  "
          f"scan: {si_format(scan.latency, 's')}, "
          f"{si_format(scan.energy, 'J')}  ->  {speedup:.0f}x faster")

    total = table.sum_column("amount")
    print(f"\n3) aggregation: sum(amount) = {total} "
          f"({si_format(table.query_log[-1].latency, 's')})")

    print("\n4) which junction should the database machine use?")
    study = TilingStudy(devices=10**6, min_margin=2.0)
    rows = []
    for name, report in study.compare().items():
        rows.append([
            name,
            str(report.tile_edge) if report.feasible else "infeasible",
            f"x{report.periphery_area_ratio:.0f}" if report.feasible else "-",
        ])
    print(format_table(
        ["junction", "feasible tile edge", "periphery/junction area"], rows,
    ))
    print("   -> CRS tiles amortise the CMOS periphery ~65x better than "
          "bare 1R:\n      the Section IV.B device work is what makes the "
          "database machine buildable.")


if __name__ == "__main__":
    main()
