"""Neural inference on analog CIM crossbars — the §III.C use case.

Run:
    python examples/neural_inference.py

Trains a small classifier on synthetic Gaussian blobs (closed-form,
no SGD), maps both dense layers onto differential memristor crossbars
(one extra row folds the bias in), and evaluates:

* ideal-crossbar accuracy vs the floating-point model (identical),
* the accuracy cliff under programming noise and coarse conductance
  quantisation,
* per-inference latency/energy/area from the Table 1 device constants.
"""

import numpy as np

from repro.analog import (
    AnalogSpec,
    CrossbarMLP,
    fit_two_layer_classifier,
    make_blobs,
)
from repro.units import si_format


def main() -> None:
    xs, labels = make_blobs(samples=400, classes=3, features=4,
                            spread=0.55, seed=10)
    layers = fit_two_layer_classifier(xs, labels, hidden=32, classes=3,
                                      seed=11)
    print(f"task: 3-class blobs, 4 features, {len(xs)} samples")
    print(f"network: 4 -> 32 -> 3, mapped onto "
          f"{len(layers)} differential crossbars")

    mlp = CrossbarMLP(layers)
    print(f"\nideal crossbars:   accuracy {mlp.accuracy(xs, labels):.3f}")
    sample = xs[0]
    drift = np.abs(mlp.forward_analog(sample) - mlp.forward_float(sample)).max()
    print(f"analog-vs-float output drift: {drift:.2e} (exact mapping)")

    print("\nprogramming-noise sweep (mean of 3 seeds):")
    for sigma in (0.05, 0.1, 0.2, 0.4):
        scores = [
            CrossbarMLP(layers, spec=AnalogSpec(sigma=sigma), seed=s)
            .accuracy(xs, labels)
            for s in range(3)
        ]
        print(f"  sigma={sigma:4.2f}: accuracy {np.mean(scores):.3f}")

    print("\nconductance-quantisation sweep:")
    for levels in (4, 8, 16, 64):
        accuracy = CrossbarMLP(
            layers, spec=AnalogSpec(levels=levels), seed=0
        ).accuracy(xs, labels)
        print(f"  {levels:3d} levels: accuracy {accuracy:.3f}")

    print(f"\ncosts per inference (Table 1 constants):")
    print(f"  latency: {si_format(mlp.inference_latency(), 's')} "
          f"(one read pulse per layer)")
    print(f"  energy:  {si_format(mlp.inference_energy(sample), 'J')}")
    print(f"  area:    {mlp.area() * 1e12:.1f} um^2 of junctions")


if __name__ == "__main__":
    main()
